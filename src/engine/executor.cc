#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace uqp {

int ResolveNumThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(1u, hw));
}

/// Shared pull-state of one RunTasks call: threads claim indexes from
/// `next` until exhausted; the last finisher wakes the waiting caller.
struct MorselPool::Batch {
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  int64_t total = 0;
  const std::function<void(int64_t)>* fn = nullptr;
  /// Guards nothing directly (`next`/`done` are atomics) — it exists so
  /// the completion notify and the caller's wait agree on one lock and a
  /// wakeup can never be lost between the final done increment and the
  /// caller parking on the condition variable.
  Mutex mu;
  CondVar cv;

  void Pull() {
    for (;;) {
      const int64_t i = next.fetch_add(1);
      if (i >= total) return;
      (*fn)(i);
      if (done.fetch_add(1) + 1 == total) {
        MutexLock lock(&mu);
        cv.NotifyAll();
      }
    }
  }

  bool exhausted() const { return next.load() >= total; }
};

MorselPool::MorselPool(int num_threads) {
  const int n = std::max(1, ResolveNumThreads(num_threads));
  threads_.reserve(static_cast<size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    threads_.emplace_back(&MorselPool::WorkerLoop, this);
  }
}

MorselPool::~MorselPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void MorselPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lock(&mu_);
      // Explicit predicate loop (not the wait-with-lambda overload): the
      // thread-safety analysis checks guarded accesses here, in the
      // function that provably holds mu_. Prune batches every thread has
      // already claimed out: they only sit in the list to attract helpers.
      for (;;) {
        while (!active_.empty() && active_.front()->exhausted()) {
          active_.pop_front();
        }
        if (stop_ || !active_.empty()) break;
        cv_.Wait(mu_);
      }
      if (active_.empty()) return;  // stop_ set and nothing left to help
      batch = active_.front();
    }
    batch->Pull();
  }
}

void MorselPool::RunTasks(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (n == 1 || threads_.empty()) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->total = n;
  batch->fn = &fn;  // outlives the call: we wait for completion below
  {
    MutexLock lock(&mu_);
    if (!stop_) active_.push_back(batch);
  }
  cv_.NotifyAll();
  batch->Pull();  // the calling thread shards too (incl. nested calls)
  MutexLock lock(&batch->mu);
  while (batch->done.load() != batch->total) batch->cv.Wait(batch->mu);
}

namespace {

uint64_t HashKeys(RowRef row, const std::vector<int>& cols) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) h = HashMix64(h, row[c].Hash());
  return h;
}

bool KeysEqual(RowRef a, const std::vector<int>& acols, RowRef b,
               const std::vector<int>& bcols) {
  for (size_t i = 0; i < acols.size(); ++i) {
    if (!a[acols[i]].Equals(b[bcols[i]])) return false;
  }
  return true;
}

/// Total order used by Sort/MergeJoin: numeric order for numbers,
/// lexicographic for strings.
bool ValueLess(const Value& a, const Value& b) {
  if (a.type == ValueType::kString && b.type == ValueType::kString) {
    if (a.s == b.s) return false;
    return a.AsString() < b.AsString();
  }
  return a.AsDouble() < b.AsDouble();
}

int ValueCompare3(const Value& a, const Value& b) {
  if (ValueLess(a, b)) return -1;
  if (ValueLess(b, a)) return 1;
  return 0;
}

double PagesFor(double rows, double width_bytes) {
  if (rows <= 0.0) return 0.0;
  return std::ceil(rows * std::max(8.0, width_bytes) / kPageSizeBytes);
}

struct GroupAccumulator {
  uint64_t hash = 0;  ///< group-key hash, kept so chunk tables merge cheaply
  std::vector<Value> group_values;
  std::vector<double> sums;
  std::vector<double> mins;
  std::vector<double> maxs;
  int64_t count = 0;
};

/// One aggregation hash table: accumulators in first-appearance order plus
/// a hash index into them. Aggregation builds one table per input chunk and
/// merges the chunk tables in chunk order, so the global first-appearance
/// order equals the sequential scan's regardless of thread count.
struct GroupTable {
  std::vector<GroupAccumulator> groups;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;  ///< hash -> idx

  GroupAccumulator* FindByRow(uint64_t h, RowRef row,
                              const std::vector<int>& group_cols) {
    auto it = buckets.find(h);
    if (it == buckets.end()) return nullptr;
    for (uint32_t idx : it->second) {
      GroupAccumulator& cand = groups[idx];
      bool same = true;
      for (size_t g = 0; g < group_cols.size(); ++g) {
        if (!cand.group_values[g].Equals(row[group_cols[g]])) {
          same = false;
          break;
        }
      }
      if (same) return &cand;
    }
    return nullptr;
  }

  GroupAccumulator* FindByAcc(const GroupAccumulator& key) {
    auto it = buckets.find(key.hash);
    if (it == buckets.end()) return nullptr;
    for (uint32_t idx : it->second) {
      GroupAccumulator& cand = groups[idx];
      bool same = true;
      for (size_t g = 0; g < key.group_values.size(); ++g) {
        if (!cand.group_values[g].Equals(key.group_values[g])) {
          same = false;
          break;
        }
      }
      if (same) return &cand;
    }
    return nullptr;
  }

  GroupAccumulator* Append(GroupAccumulator&& acc) {
    buckets[acc.hash].push_back(static_cast<uint32_t>(groups.size()));
    groups.push_back(std::move(acc));
    return &groups.back();
  }
};

class ExecContext {
 public:
  ExecContext(const Database* db, const ExecOptions& options, int num_operators,
              int num_leaves, TaskRunner* runner)
      : db_(db), options_(options), runner_(runner) {
    stats_.resize(static_cast<size_t>(num_operators));
    leaf_source_rows_.resize(static_cast<size_t>(num_leaves), 1.0);
  }

  const Table& SourceTable(const PlanNode& node) const {
    if (options_.leaf_overrides != nullptr) {
      const auto& overrides = *options_.leaf_overrides;
      UQP_CHECK(node.leaf_begin >= 0 &&
                node.leaf_begin < static_cast<int>(overrides.size()))
          << "leaf override vector too short";
      return *overrides[static_cast<size_t>(node.leaf_begin)];
    }
    return db_->GetTable(node.table_name);
  }

  bool prov() const { return options_.collect_provenance; }
  const EngineConfig& engine() const { return options_.engine; }
  int64_t batch() const { return std::max<int64_t>(1, options_.max_batch_size); }

  /// Cooperative cancellation probe, latched: once the caller's token
  /// fires, every subsequent check short-circuits on the atomic without
  /// re-invoking the (potentially costlier) std::function. The latch is a
  /// monotonic flag, so relaxed ordering suffices — a stale `false` read
  /// merely delays the stop by one morsel boundary.
  bool Cancelled() {
    if (!options_.cancelled) return false;
    // Plain atomic flag, deliberately outside the mutex capability model:
    // it carries no data dependency, only a monotonic "stop" signal.
    if (cancel_seen_.load(std::memory_order_relaxed)) return true;
    if (options_.cancelled()) {
      cancel_seen_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Intra-query fan-out is on: shard chunked loops and join children
  /// across the task runner.
  bool parallel() const { return runner_ != nullptr; }
  TaskRunner* runner() const { return runner_; }

  OpStats& stats(const PlanNode& node) {
    return stats_[static_cast<size_t>(node.id)];
  }

  void RecordLeafRows(int leaf_pos, double rows) {
    leaf_source_rows_[static_cast<size_t>(leaf_pos)] = rows;
  }
  double LeafProduct(int begin, int end) const {
    double p = 1.0;
    for (int i = begin; i < end; ++i) p *= leaf_source_rows_[static_cast<size_t>(i)];
    return p;
  }

  std::vector<OpStats> TakeStats() { return std::move(stats_); }

 private:
  const Database* db_;
  const ExecOptions& options_;
  TaskRunner* runner_;
  std::atomic<bool> cancel_seen_{false};
  std::vector<OpStats> stats_;
  std::vector<double> leaf_source_rows_;
};

class NodeRunner {
 public:
  NodeRunner(ExecContext* ctx, std::vector<RowBlock>* retained)
      : ctx_(ctx), retained_(retained) {}

  StatusOr<RowBlock> Run(const PlanNode& node) {
    // Operator-boundary cancellation checks. The entry check stops a
    // cancelled run before it charges the next operator; the exit check
    // discards output whose shard bodies were skipped mid-flight (a
    // cancelled RunTaskRange leaves partially-built blocks behind).
    if (ctx_->Cancelled()) {
      return Status::DeadlineExceeded("execution cancelled at operator boundary");
    }
    UQP_ASSIGN_OR_RETURN(RowBlock block, RunImpl(node));
    if (ctx_->Cancelled()) {
      return Status::DeadlineExceeded("execution cancelled at operator boundary");
    }
    if (retained_ != nullptr) {
      (*retained_)[static_cast<size_t>(node.id)] = block;  // copy
    }
    return block;
  }

 private:
  StatusOr<RowBlock> RunImpl(const PlanNode& node) {
    switch (node.type) {
      case OpType::kSeqScan:
        return RunSeqScan(node);
      case OpType::kIndexScan:
        return RunIndexScan(node);
      case OpType::kHashJoin:
        return RunHashJoin(node);
      case OpType::kMergeJoin:
        return RunMergeJoin(node);
      case OpType::kNestLoopJoin:
        return RunNestLoopJoin(node);
      case OpType::kSort:
        return RunSort(node);
      case OpType::kAggregate:
        return RunAggregate(node);
      case OpType::kMaterialize:
        return RunMaterialize(node);
    }
    return Status::Internal("unknown operator type");
  }

  /// Appends the rows of a contiguous chunk whose selection-mask lane is
  /// set, bulk-copying consecutive runs of survivors. Provenance ids are
  /// base + lane (row indexes of the source table) — or, when `rids` is
  /// non-null, come from that parallel array instead (rows gathered from
  /// non-contiguous sources, e.g. index scans).
  void AppendSelected(RowBlock* out, const Value* rows, int ncols, int64_t n,
                      const uint8_t* mask, int64_t base,
                      const uint32_t* rids = nullptr) {
    int64_t i = 0;
    while (i < n) {
      if (mask[i] == 0) {
        ++i;
        continue;
      }
      int64_t j = i + 1;
      while (j < n && mask[j] != 0) ++j;
      out->values.insert(out->values.end(), rows + i * ncols, rows + j * ncols);
      if (out->prov_width > 0) {
        if (rids != nullptr) {
          out->prov.insert(out->prov.end(), rids + i, rids + j);
        } else {
          for (int64_t r = i; r < j; ++r) {
            out->prov.push_back(static_cast<uint32_t>(base + r));
          }
        }
      }
      i = j;
    }
  }

  // ----- intra-query sharding helpers -------------------------------------
  //
  // Sharded loops fan out one task per max_batch_size-row chunk (or per
  // emission group batch); results merge in task order. That makes the
  // parallel run bit-identical to the sequential one: the sequential loop
  // processes the same work units in the same order, and every counter a
  // task accumulates is an integer-valued count (hash ops, chain visits,
  // qual evaluations, sort comparisons), so summing per-task partials
  // regroups the same double additions exactly.
  //
  // Output assembly is two-pass: a compute pass materializes per-task
  // results, a sizing step derives exact prefix offsets, and a placement
  // pass writes every task's rows in place into the pre-sized output —
  // disjoint spans, written concurrently, no sequential merge copy.

  int64_t NumChunks(int64_t total) const {
    const int64_t chunk = ctx_->batch();
    return (total + chunk - 1) / chunk;
  }

  /// True when this loop of `total` rows should fan out (pool present and
  /// more than one chunk to hand out).
  bool ShouldShard(int64_t total) const {
    return ctx_->parallel() && NumChunks(total) >= 2;
  }

  /// Runs task indexes [0, n) — on the pool when intra-query parallelism
  /// is on and there is more than one task, inline otherwise. Either way
  /// the task decomposition (and hence every per-task counter) is
  /// identical; only the dispatch differs.
  void RunTaskRange(int64_t n, const std::function<void(int64_t)>& fn) {
    // Morsel-boundary cancellation: each shard re-probes the token before
    // its body, so a request past its deadline stops consuming pool time
    // within one morsel of the expiry — without interrupting a shard that
    // is already running.
    const auto guarded = [&](int64_t t) {
      if (ctx_->Cancelled()) return;
      fn(t);
    };
    if (ctx_->parallel() && n >= 2) {
      ctx_->runner()->RunTasks(n, guarded);
    } else {
      for (int64_t t = 0; t < n; ++t) guarded(t);
    }
  }

  /// Runs `task_fn(t, local_block, local_stats)` for every task in
  /// [0, ntasks) across the pool, then assembles the output two-pass:
  /// exact per-task offsets are prefix-summed, `out` is resized once, and
  /// every task's rows are placed in-place — concurrently, into disjoint
  /// spans — instead of being merge-copied one task at a time.
  void RunShardedTasks(
      int64_t ntasks, RowBlock* out, OpStats* st,
      const std::function<void(int64_t, RowBlock*, OpStats*)>& task_fn) {
    std::vector<RowBlock> blocks(static_cast<size_t>(ntasks));
    std::vector<OpStats> partials(static_cast<size_t>(ntasks));
    ctx_->runner()->RunTasks(ntasks, [&](int64_t t) {
      // Morsel-boundary cancellation (see RunTaskRange): a cancelled
      // compute pass leaves empty locals; the run's output is discarded
      // at the next operator boundary, so no partial block escapes.
      if (ctx_->Cancelled()) return;
      RowBlock& local = blocks[static_cast<size_t>(t)];
      local.prov_width = out->prov_width;
      task_fn(t, &local, &partials[static_cast<size_t>(t)]);
    });
    // Sizing: exact prefix offsets per task, one resize of the output.
    const size_t vbase = out->values.size();
    const size_t pbase = out->prov.size();
    std::vector<size_t> voff(static_cast<size_t>(ntasks) + 1, 0);
    std::vector<size_t> poff(static_cast<size_t>(ntasks) + 1, 0);
    for (int64_t t = 0; t < ntasks; ++t) {
      voff[static_cast<size_t>(t) + 1] =
          voff[static_cast<size_t>(t)] + blocks[static_cast<size_t>(t)].values.size();
      poff[static_cast<size_t>(t) + 1] =
          poff[static_cast<size_t>(t)] + blocks[static_cast<size_t>(t)].prov.size();
    }
    out->values.resize(vbase + voff[static_cast<size_t>(ntasks)]);
    out->prov.resize(pbase + poff[static_cast<size_t>(ntasks)]);
    // Placement: every task writes its span of the pre-sized output.
    ctx_->runner()->RunTasks(ntasks, [&](int64_t t) {
      const RowBlock& b = blocks[static_cast<size_t>(t)];
      std::copy(b.values.begin(), b.values.end(),
                out->values.begin() + vbase + voff[static_cast<size_t>(t)]);
      std::copy(b.prov.begin(), b.prov.end(),
                out->prov.begin() + pbase + poff[static_cast<size_t>(t)]);
    });
    for (int64_t t = 0; t < ntasks; ++t) {
      st->actual += partials[static_cast<size_t>(t)].actual;
    }
  }

  /// Row-chunk flavor of RunShardedTasks: one task per max_batch_size-row
  /// chunk of [0, total), `chunk_fn(base, nb, local_block, local_stats)`.
  void RunChunksParallel(
      int64_t total, RowBlock* out, OpStats* st,
      const std::function<void(int64_t, int64_t, RowBlock*, OpStats*)>&
          chunk_fn) {
    const int64_t chunk = ctx_->batch();
    RunShardedTasks(NumChunks(total), out, st,
                    [&](int64_t c, RowBlock* local, OpStats* pst) {
                      const int64_t base = c * chunk;
                      const int64_t nb = std::min(chunk, total - base);
                      chunk_fn(base, nb, local, pst);
                    });
  }

  /// In-place flavor of AppendSelected: writes the selected rows of a
  /// contiguous chunk (and their provenance ids) at `vdst`/`pdst`, which
  /// must have room for every survivor. Returns the rows written. Value is
  /// a trivially copyable 16-byte cell, so the run copies lower to memmove.
  static int64_t PlaceSelected(Value* vdst, uint32_t* pdst, const Value* rows,
                               int ncols, int64_t n, const uint8_t* mask,
                               int64_t base, const uint32_t* rids = nullptr) {
    int64_t written = 0;
    int64_t i = 0;
    while (i < n) {
      if (mask[i] == 0) {
        ++i;
        continue;
      }
      int64_t j = i + 1;
      while (j < n && mask[j] != 0) ++j;
      std::copy(rows + i * ncols, rows + j * ncols, vdst + written * ncols);
      if (pdst != nullptr) {
        if (rids != nullptr) {
          std::copy(rids + i, rids + j, pdst + written);
        } else {
          for (int64_t r = i; r < j; ++r) {
            pdst[written + (r - i)] = static_cast<uint32_t>(base + r);
          }
        }
      }
      written += j - i;
      i = j;
    }
    return written;
  }

  /// Runs both children of a binary operator, concurrently when the
  /// intra-query pool is on (independent subtrees touch disjoint stats /
  /// retained-block slots). Errors keep the sequential precedence: the
  /// left child's status wins.
  Status RunChildren(const PlanNode& node, RowBlock* left, RowBlock* right) {
    if (ctx_->parallel()) {
      StatusOr<RowBlock> l = Status::Internal("left child did not run");
      StatusOr<RowBlock> r = Status::Internal("right child did not run");
      ctx_->runner()->RunTasks(2, [&](int64_t i) {
        if (i == 0) {
          l = Run(*node.left);
        } else {
          r = Run(*node.right);
        }
      });
      if (!l.ok()) return l.status();
      if (!r.ok()) return r.status();
      *left = std::move(l).value();
      *right = std::move(r).value();
      return Status::OK();
    }
    UQP_ASSIGN_OR_RETURN(*left, Run(*node.left));
    UQP_ASSIGN_OR_RETURN(*right, Run(*node.right));
    return Status::OK();
  }

  /// Assembles one join output row directly in the output block: appends
  /// lrow then rrow, evaluates the residual predicate in place (rolling
  /// back on reject, charging `quals` ops), then appends provenance.
  void AppendJoinRow(RowBlock* out, int out_cols, const RowBlock& left,
                     int64_t l, const RowBlock& right, int64_t r,
                     const PlanNode& node, int quals, OpStats* st) {
    const RowRef lrow = left.row(l);
    const RowRef rrow = right.row(r);
    const size_t row_start = out->values.size();
    out->values.insert(out->values.end(), lrow.data,
                       lrow.data + lrow.num_columns);
    out->values.insert(out->values.end(), rrow.data,
                       rrow.data + rrow.num_columns);
    if (node.predicate != nullptr) {
      st->actual.no += quals;
      const RowRef jrow{out->values.data() + row_start, out_cols};
      if (!EvalPredicate(*node.predicate, jrow)) {
        out->values.resize(row_start);
        return;
      }
    }
    if (ctx_->prov()) {
      const uint32_t* lp = left.prov_row(l);
      const uint32_t* rp = right.prov_row(r);
      out->prov.insert(out->prov.end(), lp, lp + left.prov_width);
      out->prov.insert(out->prov.end(), rp, rp + right.prov_width);
    }
  }

  StatusOr<RowBlock> RunSeqScan(const PlanNode& node) {
    const Table& src = ctx_->SourceTable(node);
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    ctx_->RecordLeafRows(node.leaf_begin, static_cast<double>(src.num_rows()));

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? 1 : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    const int64_t rows = src.num_rows();
    st.actual.ns += static_cast<double>(src.num_pages());
    st.actual.nt += static_cast<double>(rows);
    st.actual.no += static_cast<double>(rows) * quals;

    const int ncols = out.schema.num_columns();
    const Value* data = src.raw_values().data();
    if (node.predicate == nullptr) {
      out.values.assign(data, data + rows * ncols);
      if (out.prov_width > 0) {
        out.prov.resize(static_cast<size_t>(rows));
        for (int64_t r = 0; r < rows; ++r) {
          out.prov[static_cast<size_t>(r)] = static_cast<uint32_t>(r);
        }
      }
    } else if (ShouldShard(rows)) {
      // Morsel-parallel filter, fully in place: a sizing pass evaluates
      // the predicate into one shared mask and counts survivors per chunk,
      // then the output is sized once and a placement pass copies each
      // chunk's surviving source rows directly into its span — no
      // intermediate chunk blocks, no merge copy. Survivors land in chunk
      // order, bit-identical to the sequential loop below.
      const int64_t chunk = ctx_->batch();
      const int64_t nchunks = NumChunks(rows);
      std::vector<uint8_t> mask(static_cast<size_t>(rows));
      std::vector<int64_t> survivors(static_cast<size_t>(nchunks), 0);
      ctx_->runner()->RunTasks(nchunks, [&](int64_t c) {
        const int64_t base = c * chunk;
        const int64_t nb = std::min(chunk, rows - base);
        uint8_t* chunk_mask = mask.data() + base;
        EvalPredicateBatch(*node.predicate, data + base * ncols, ncols, nb,
                           chunk_mask);
        int64_t count = 0;
        for (int64_t i = 0; i < nb; ++i) count += chunk_mask[i] != 0;
        survivors[static_cast<size_t>(c)] = count;
      });
      std::vector<int64_t> offsets(static_cast<size_t>(nchunks) + 1, 0);
      for (int64_t c = 0; c < nchunks; ++c) {
        offsets[static_cast<size_t>(c) + 1] =
            offsets[static_cast<size_t>(c)] + survivors[static_cast<size_t>(c)];
      }
      const int64_t total = offsets[static_cast<size_t>(nchunks)];
      out.values.resize(static_cast<size_t>(total * ncols));
      if (out.prov_width > 0) out.prov.resize(static_cast<size_t>(total));
      ctx_->runner()->RunTasks(nchunks, [&](int64_t c) {
        const int64_t base = c * chunk;
        const int64_t nb = std::min(chunk, rows - base);
        const int64_t off = offsets[static_cast<size_t>(c)];
        PlaceSelected(out.values.data() + off * ncols,
                      out.prov_width > 0 ? out.prov.data() + off : nullptr,
                      data + base * ncols, ncols, nb, mask.data() + base, base);
      });
    } else {
      // Filter in chunks: evaluate the predicate column-at-a-time into a
      // selection mask, then copy survivors in runs.
      const int64_t chunk = ctx_->batch();
      std::vector<uint8_t> mask(static_cast<size_t>(std::min(chunk, rows)));
      for (int64_t base = 0; base < rows; base += chunk) {
        const int64_t nb = std::min(chunk, rows - base);
        const Value* chunk_rows = data + base * ncols;
        EvalPredicateBatch(*node.predicate, chunk_rows, ncols, nb, mask.data());
        AppendSelected(&out, chunk_rows, ncols, nb, mask.data(), base);
      }
    }
    st.out_rows = static_cast<double>(out.num_rows());
    return out;
  }

  StatusOr<RowBlock> RunIndexScan(const PlanNode& node) {
    const Table& src = ctx_->SourceTable(node);
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    ctx_->RecordLeafRows(node.leaf_begin, static_cast<double>(src.num_rows()));

    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    bool has_range = false, pure = true;
    CollectIndexRange(node.predicate.get(), node.index_column, &lo, &hi,
                      &has_range, &pure);
    if (!has_range) {
      return Status::InvalidArgument(
          "index scan predicate has no range over the indexed column");
    }
    const std::vector<uint32_t>& index = src.OrderedIndex(node.index_column);
    const int64_t n = src.num_rows();

    // Binary search for the boundaries in the ordered index.
    auto value_at = [&src, &node](uint32_t rid) {
      return src.at(rid, node.index_column).AsDouble();
    };
    const auto begin_it =
        std::lower_bound(index.begin(), index.end(), lo,
                         [&](uint32_t rid, double v) { return value_at(rid) < v; });
    const auto end_it =
        std::upper_bound(begin_it, index.end(), hi,
                         [&](double v, uint32_t rid) { return v < value_at(rid); });

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? 1 : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    std::unordered_set<int64_t> pages_touched;
    const int64_t rows_per_page = src.rows_per_page();
    const int64_t matches = end_it - begin_it;
    const int ncols = out.schema.num_columns();
    const bool residual = !pure && node.predicate != nullptr;

    // Gather matched rows a chunk at a time into a contiguous block, then
    // run the residual filter column-at-a-time over the chunk and bulk-copy
    // survivor runs (mirroring the seq-scan/hash-join batched inner loops).
    if (ShouldShard(matches)) {
      // Morsel-parallel gather: chunks index the ordered-index range
      // directly; per-chunk page sets union into one set (same size in any
      // order), and chunk outputs merge in chunk order.
      std::vector<std::unordered_set<int64_t>> chunk_pages(
          static_cast<size_t>(NumChunks(matches)));
      const int64_t chunk = ctx_->batch();
      RunChunksParallel(
          matches, &out, &st,
          [&](int64_t base, int64_t nb, RowBlock* dst, OpStats*) {
            std::unordered_set<int64_t>& pages =
                chunk_pages[static_cast<size_t>(base / chunk)];
            std::vector<Value> gathered(static_cast<size_t>(nb * ncols));
            std::vector<uint32_t> rids(static_cast<size_t>(nb));
            std::vector<uint8_t> mask(static_cast<size_t>(nb), 1);
            for (int64_t i = 0; i < nb; ++i) {
              const uint32_t rid = *(begin_it + base + i);
              pages.insert(static_cast<int64_t>(rid) / rows_per_page);
              const RowRef row = src.row(rid);
              std::copy(row.data, row.data + ncols,
                        gathered.begin() + i * ncols);
              rids[static_cast<size_t>(i)] = rid;
            }
            if (residual) {
              EvalPredicateBatch(*node.predicate, gathered.data(), ncols, nb,
                                 mask.data());
            }
            AppendSelected(dst, gathered.data(), ncols, nb, mask.data(),
                           /*base=*/0, rids.data());
          });
      for (const auto& pages : chunk_pages) {
        // Set union: the resulting set (and the page-count counter derived
        // from its size) is the same whatever order the per-chunk sets
        // merge in.
        // det-lint: order-independent
        pages_touched.insert(pages.begin(), pages.end());
      }
    } else {
      const int64_t chunk =
          std::min<int64_t>(ctx_->batch(), std::max<int64_t>(1, matches));
      std::vector<Value> gathered(static_cast<size_t>(chunk * ncols));
      std::vector<uint32_t> rids(static_cast<size_t>(chunk));
      std::vector<uint8_t> mask(static_cast<size_t>(chunk), 1);
      auto it = begin_it;
      for (int64_t base = 0; base < matches; base += chunk) {
        const int64_t nb = std::min(chunk, matches - base);
        for (int64_t i = 0; i < nb; ++i, ++it) {
          const uint32_t rid = *it;
          pages_touched.insert(static_cast<int64_t>(rid) / rows_per_page);
          const RowRef row = src.row(rid);
          std::copy(row.data, row.data + ncols, gathered.begin() + i * ncols);
          rids[static_cast<size_t>(i)] = rid;
        }
        if (residual) {
          // Residual filter: re-evaluate the full predicate on fetched rows.
          EvalPredicateBatch(*node.predicate, gathered.data(), ncols, nb,
                             mask.data());
        }
        AppendSelected(&out, gathered.data(), ncols, nb, mask.data(),
                       /*base=*/0, rids.data());
      }
    }
    st.actual.ni += static_cast<double>(matches) + std::log2(std::max<double>(2.0, static_cast<double>(n)));
    st.actual.nr += static_cast<double>(pages_touched.size());
    st.actual.nt += static_cast<double>(matches);
    st.actual.no += static_cast<double>(matches) * quals;
    st.out_rows = static_cast<double>(out.num_rows());
    return out;
  }

  StatusOr<RowBlock> RunHashJoin(const PlanNode& node) {
    RowBlock left, right;
    UQP_RETURN_IF_ERROR(RunChildren(node, &left, &right));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(left.num_rows());
    st.right_rows = static_cast<double>(right.num_rows());

    std::vector<int> lcols, rcols;
    for (const auto& [l, r] : node.join_keys) {
      lcols.push_back(l);
      rcols.push_back(r);
    }

    const int64_t chunk = ctx_->batch();

    // Build on the right input. Key hashing shards across the pool; the
    // chain inserts stay in build-row order (one sequential pass), so
    // every chain lists the same rids in the same order as the sequential
    // build — which is what keeps the probe output order bit-identical.
    std::unordered_map<uint64_t, std::vector<uint32_t>> table;
    table.reserve(static_cast<size_t>(right.num_rows()) * 2 + 16);
    if (ShouldShard(right.num_rows())) {
      std::vector<uint64_t> all_hashes(
          static_cast<size_t>(right.num_rows()));
      ctx_->runner()->RunTasks(NumChunks(right.num_rows()), [&](int64_t c) {
        const int64_t base = c * chunk;
        const int64_t nb = std::min(chunk, right.num_rows() - base);
        for (int64_t i = 0; i < nb; ++i) {
          all_hashes[static_cast<size_t>(base + i)] =
              HashKeys(right.row(base + i), rcols);
        }
      });
      for (int64_t r = 0; r < right.num_rows(); ++r) {
        table[all_hashes[static_cast<size_t>(r)]].push_back(
            static_cast<uint32_t>(r));
      }
      st.actual.no += static_cast<double>(right.num_rows());  // build hash ops
    } else {
      std::vector<uint64_t> hashes(static_cast<size_t>(
          std::min(chunk, std::max<int64_t>(1, right.num_rows()))));
      for (int64_t base = 0; base < right.num_rows(); base += chunk) {
        const int64_t nb = std::min(chunk, right.num_rows() - base);
        for (int64_t i = 0; i < nb; ++i) {
          hashes[static_cast<size_t>(i)] = HashKeys(right.row(base + i), rcols);
        }
        for (int64_t i = 0; i < nb; ++i) {
          table[hashes[static_cast<size_t>(i)]].push_back(
              static_cast<uint32_t>(base + i));
        }
        st.actual.no += static_cast<double>(nb);  // build-side hash ops
      }
    }

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? left.prov_width + right.prov_width : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    const int out_cols = out.schema.num_columns();
    // Probe in chunks: hash a chunk of probe keys, then walk the chains,
    // assembling join rows directly in the chunk's output block. The same
    // body serves both modes; sequentially it appends straight into `out`
    // chunk by chunk, in parallel each chunk fills a private block and the
    // blocks merge in chunk order — the identical sequence of appends and
    // (integer-valued) counter additions either way.
    const auto probe_chunk = [&](int64_t base, int64_t nb, RowBlock* dst,
                                 OpStats* pst) {
      std::vector<uint64_t> hashes(static_cast<size_t>(nb));
      for (int64_t i = 0; i < nb; ++i) {
        hashes[static_cast<size_t>(i)] = HashKeys(left.row(base + i), lcols);
      }
      pst->actual.no += static_cast<double>(nb);  // probe-side hash ops
      for (int64_t i = 0; i < nb; ++i) {
        auto it = table.find(hashes[static_cast<size_t>(i)]);
        if (it == table.end()) continue;
        const int64_t l = base + i;
        const RowRef lrow = left.row(l);
        for (uint32_t r : it->second) {
          pst->actual.no += 1.0;  // chain visit / key compare
          if (!KeysEqual(lrow, lcols, right.row(r), rcols)) continue;
          AppendJoinRow(dst, out_cols, left, l, right, r, node, quals, pst);
        }
      }
    };
    if (ShouldShard(left.num_rows())) {
      RunChunksParallel(left.num_rows(), &out, &st, probe_chunk);
    } else {
      for (int64_t base = 0; base < left.num_rows(); base += chunk) {
        const int64_t nb = std::min(chunk, left.num_rows() - base);
        probe_chunk(base, nb, &out, &st);
      }
    }
    st.out_rows = static_cast<double>(out.num_rows());
    st.actual.nt += st.out_rows;
    // Grace-hash spill I/O if the build side exceeds work_mem.
    const double build_bytes =
        st.right_rows * node.right->output_schema.TupleWidthBytes();
    if (build_bytes > ctx_->engine().work_mem_bytes) {
      st.actual.ns +=
          2.0 * (PagesFor(st.left_rows, node.left->output_schema.TupleWidthBytes()) +
                 PagesFor(st.right_rows, node.right->output_schema.TupleWidthBytes()));
    }
    return out;
  }

  StatusOr<RowBlock> RunMergeJoin(const PlanNode& node) {
    RowBlock left, right;
    UQP_RETURN_IF_ERROR(RunChildren(node, &left, &right));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(left.num_rows());
    st.right_rows = static_cast<double>(right.num_rows());

    UQP_CHECK(node.join_keys.size() == 1)
        << "merge join supports exactly one key";
    const int lc = node.join_keys[0].first;
    const int rc = node.join_keys[0].second;

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? left.prov_width + right.prov_width : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    const int out_cols = out.schema.num_columns();

    // Phase 1 — the two-pointer walk stays sequential and defines the
    // comparison counter exactly as before; it now only records the
    // equal-group boundaries instead of emitting inside the loop.
    struct EqualGroup {
      int64_t li, le, ri, re;
    };
    std::vector<EqualGroup> eq_groups;
    int64_t li = 0, ri = 0;
    const int64_t ln = left.num_rows(), rn = right.num_rows();
    while (li < ln && ri < rn) {
      st.actual.no += 1.0;
      const int cmp = ValueCompare3(left.row(li)[lc], right.row(ri)[rc]);
      if (cmp < 0) {
        ++li;
        continue;
      }
      if (cmp > 0) {
        ++ri;
        continue;
      }
      // Equal group: [li, le) x [ri, re).
      int64_t le = li + 1;
      while (le < ln) {
        st.actual.no += 1.0;
        if (ValueCompare3(left.row(le)[lc], left.row(li)[lc]) != 0) break;
        ++le;
      }
      int64_t re = ri + 1;
      while (re < rn) {
        st.actual.no += 1.0;
        if (ValueCompare3(right.row(re)[rc], right.row(ri)[rc]) != 0) break;
        ++re;
      }
      eq_groups.push_back({li, le, ri, re});
      li = le;
      ri = re;
    }

    // Phase 2 — cross-product emission, sharded: consecutive groups batch
    // into tasks of roughly max_batch_size output pairs (an input-derived
    // decomposition — thread count never shapes it), each task emits its
    // groups in order, and task outputs place in task order. Group order,
    // residual-qual charges (integers) and row order match the sequential
    // emission exactly.
    const auto emit_groups = [&](size_t gbegin, size_t gend, RowBlock* dst,
                                 OpStats* pst) {
      for (size_t g = gbegin; g < gend; ++g) {
        const EqualGroup& eq = eq_groups[g];
        for (int64_t a = eq.li; a < eq.le; ++a) {
          for (int64_t b = eq.ri; b < eq.re; ++b) {
            AppendJoinRow(dst, out_cols, left, a, right, b, node, quals, pst);
          }
        }
      }
    };
    std::vector<size_t> task_bounds{0};
    int64_t pending_pairs = 0;
    for (size_t g = 0; g < eq_groups.size(); ++g) {
      const EqualGroup& eq = eq_groups[g];
      pending_pairs += (eq.le - eq.li) * (eq.re - eq.ri);
      if (pending_pairs >= ctx_->batch()) {
        task_bounds.push_back(g + 1);
        pending_pairs = 0;
      }
    }
    if (task_bounds.back() < eq_groups.size()) {
      task_bounds.push_back(eq_groups.size());
    }
    const int64_t ntasks = static_cast<int64_t>(task_bounds.size()) - 1;
    if (ctx_->parallel() && ntasks >= 2) {
      RunShardedTasks(ntasks, &out, &st,
                      [&](int64_t t, RowBlock* dst, OpStats* pst) {
                        emit_groups(task_bounds[static_cast<size_t>(t)],
                                    task_bounds[static_cast<size_t>(t) + 1],
                                    dst, pst);
                      });
    } else {
      emit_groups(0, eq_groups.size(), &out, &st);
    }
    st.out_rows = static_cast<double>(out.num_rows());
    st.actual.nt += st.out_rows;
    return out;
  }

  StatusOr<RowBlock> RunNestLoopJoin(const PlanNode& node) {
    RowBlock left, right;
    UQP_RETURN_IF_ERROR(RunChildren(node, &left, &right));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(left.num_rows());
    st.right_rows = static_cast<double>(right.num_rows());

    std::vector<int> lcols, rcols;
    for (const auto& [l, r] : node.join_keys) {
      lcols.push_back(l);
      rcols.push_back(r);
    }

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = ctx_->prov() ? left.prov_width + right.prov_width : 0;
    const int quals = PredicateOpCount(node.predicate.get());
    const int out_cols = out.schema.num_columns();
    const int64_t rn = right.num_rows();
    // Outer loop sharded over left-row chunks (output order is left-row
    // order, so chunk-order merge is bit-identical).
    const auto outer_chunk = [&](int64_t base, int64_t nb, RowBlock* dst,
                                 OpStats* pst) {
      for (int64_t l = base; l < base + nb; ++l) {
        const RowRef lrow = left.row(l);
        pst->actual.no += static_cast<double>(rn);  // per-pair key comparisons
        for (int64_t r = 0; r < rn; ++r) {
          if (!lcols.empty() && !KeysEqual(lrow, lcols, right.row(r), rcols)) {
            continue;
          }
          AppendJoinRow(dst, out_cols, left, l, right, r, node, quals, pst);
        }
      }
    };
    if (ShouldShard(left.num_rows())) {
      RunChunksParallel(left.num_rows(), &out, &st, outer_chunk);
    } else {
      outer_chunk(0, left.num_rows(), &out, &st);
    }
    st.out_rows = static_cast<double>(out.num_rows());
    st.actual.nt += st.out_rows;
    return out;
  }

  StatusOr<RowBlock> RunSort(const PlanNode& node) {
    UQP_ASSIGN_OR_RETURN(RowBlock in, Run(*node.left));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(in.num_rows());

    // Fixed-shape blocked merge sort. Leaf blocks of max_batch_size rows
    // are sorted independently, then merged pairwise up a tree whose shape
    // is fully determined by (row count, batch size) — never by thread
    // count. Leaf sorts, same-level merges and the permuted output writes
    // all dispatch as independent tasks; the comparison count is the sum
    // of per-task integer counts accumulated in task order, so the counter
    // and the output are bit-identical at every num_threads value.
    const int64_t n = in.num_rows();
    const int64_t block = ctx_->batch();
    const int64_t nleaves = n > 0 ? NumChunks(n) : 0;
    // Total order: sort columns first, original row index as tiebreak —
    // no two indexes compare equal, so the sorted permutation is unique.
    const auto row_less = [&](uint32_t a, uint32_t b) {
      const RowRef ra = in.row(a);
      const RowRef rb = in.row(b);
      for (int c : node.sort_columns) {
        const int cmp = ValueCompare3(ra[c], rb[c]);
        if (cmp != 0) return cmp < 0;
      }
      return a < b;
    };

    std::vector<uint32_t> order(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      order[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
    }
    int64_t comparisons = 0;
    {
      // Leaf sorts: each block sorted independently, counting comparisons
      // into its own slot.
      std::vector<int64_t> leaf_comps(static_cast<size_t>(nleaves), 0);
      RunTaskRange(nleaves, [&](int64_t l) {
        const int64_t lo = l * block;
        const int64_t hi = std::min(n, lo + block);
        int64_t* comps = &leaf_comps[static_cast<size_t>(l)];
        // Leaf blocks are carved by max_batch_size only (never thread
        // count), each is sorted with a total order (row_less tie-breaks
        // on rid), and the counter sums per-leaf slots in leaf order.
        // det-lint: fixed-shape
        std::sort(order.begin() + lo, order.begin() + hi,
                  [&](uint32_t a, uint32_t b) {
                    ++*comps;
                    return row_less(a, b);
                  });
      });
      for (int64_t l = 0; l < nleaves; ++l) {
        comparisons += leaf_comps[static_cast<size_t>(l)];
      }
    }
    // Merge tree: at each level, runs of `width` rows merge pairwise; an
    // unpaired tail run carries over untouched. Same-level merges are
    // independent tasks with per-merge comparison counts.
    std::vector<uint32_t> buffer(static_cast<size_t>(n));
    uint32_t* src = order.data();
    uint32_t* dst = buffer.data();
    for (int64_t width = block; width < n; width *= 2) {
      const int64_t nmerges = (n + 2 * width - 1) / (2 * width);
      std::vector<int64_t> merge_comps(static_cast<size_t>(nmerges), 0);
      RunTaskRange(nmerges, [&](int64_t m) {
        const int64_t lo = m * 2 * width;
        const int64_t mid = std::min(n, lo + width);
        const int64_t hi = std::min(n, lo + 2 * width);
        if (mid >= hi) {  // unpaired tail: carry over, no comparisons
          std::copy(src + lo, src + hi, dst + lo);
          return;
        }
        int64_t comps = 0;
        int64_t i = lo, j = mid, k = lo;
        while (i < mid && j < hi) {
          ++comps;
          if (row_less(src[j], src[i])) {
            dst[k++] = src[j++];
          } else {
            dst[k++] = src[i++];
          }
        }
        std::copy(src + i, src + mid, dst + k);
        std::copy(src + j, src + hi, dst + k + (mid - i));
        merge_comps[static_cast<size_t>(m)] = comps;
      });
      for (int64_t m = 0; m < nmerges; ++m) {
        comparisons += merge_comps[static_cast<size_t>(m)];
      }
      std::swap(src, dst);
    }
    const uint32_t* sorted = src;

    // Permuted output, written in place: size the output once, then each
    // chunk of the permutation bulk-copies its rows' contiguous Value (and
    // provenance) spans into its span of the output.
    RowBlock out;
    out.schema = in.schema;
    out.prov_width = in.prov_width;
    const int ncols = in.schema.num_columns();
    out.values.resize(static_cast<size_t>(n * ncols));
    out.prov.resize(static_cast<size_t>(n) * out.prov_width);
    RunTaskRange(nleaves, [&](int64_t c) {
      const int64_t base = c * block;
      const int64_t nb = std::min(block, n - base);
      Value* vdst = out.values.data() + base * ncols;
      for (int64_t i = 0; i < nb; ++i) {
        const RowRef row = in.row(sorted[base + i]);
        std::copy(row.data, row.data + ncols, vdst + i * ncols);
      }
      if (out.prov_width > 0) {
        uint32_t* pdst = out.prov.data() + base * out.prov_width;
        for (int64_t i = 0; i < nb; ++i) {
          const uint32_t* p = in.prov_row(sorted[base + i]);
          std::copy(p, p + out.prov_width, pdst + i * out.prov_width);
        }
      }
    });
    st.actual.no += static_cast<double>(comparisons);
    st.actual.nt += static_cast<double>(n);
    const double bytes = static_cast<double>(n) * in.schema.TupleWidthBytes();
    if (bytes > ctx_->engine().work_mem_bytes) {
      st.actual.ns += 3.0 * PagesFor(static_cast<double>(n),
                                     in.schema.TupleWidthBytes());
    }
    st.out_rows = static_cast<double>(n);
    return out;
  }

  StatusOr<RowBlock> RunAggregate(const PlanNode& node) {
    UQP_ASSIGN_OR_RETURN(RowBlock in, Run(*node.left));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(in.num_rows());

    // Sharded aggregation with a pinned output contract: groups emit in
    // FIRST-APPEARANCE order of their key in the input (stable across
    // standard-library implementations — the old code followed
    // unordered_map bucket iteration order). Each max_batch_size-row chunk
    // builds a private hash table in chunk-local first-appearance order;
    // the chunk tables then combine through a width-doubling pairwise
    // merge tree (same fixed-shape contract as the sort's merge tree): the
    // tree's shape depends only on the chunk count — i.e. on row count and
    // max_batch_size — never on thread count, so the same merges happen in
    // the same pairing at every thread count and the output is
    // bit-identical. Ordered-union merging (left table's order wins, the
    // right table's new groups append in their local first-appearance
    // order) is associative, so the tree reproduces the sequential scan's
    // global first-appearance order exactly.
    const size_t nagg = node.aggregates.size();
    const int64_t rows = in.num_rows();
    const int64_t chunk = ctx_->batch();
    const int64_t nchunks = rows > 0 ? NumChunks(rows) : 0;
    st.actual.no += static_cast<double>(rows);  // group hash / transition ops

    std::vector<GroupTable> locals(static_cast<size_t>(nchunks));
    RunTaskRange(nchunks, [&](int64_t c) {
      const int64_t base = c * chunk;
      const int64_t nb = std::min(chunk, rows - base);
      GroupTable& table = locals[static_cast<size_t>(c)];
      for (int64_t i = 0; i < nb; ++i) {
        const RowRef row = in.row(base + i);
        const uint64_t h = HashKeys(row, node.group_columns);
        GroupAccumulator* acc = table.FindByRow(h, row, node.group_columns);
        if (acc == nullptr) {
          GroupAccumulator fresh;
          fresh.hash = h;
          for (int g : node.group_columns) fresh.group_values.push_back(row[g]);
          fresh.sums.assign(nagg, 0.0);
          fresh.mins.assign(nagg, std::numeric_limits<double>::infinity());
          fresh.maxs.assign(nagg, -std::numeric_limits<double>::infinity());
          acc = table.Append(std::move(fresh));
        }
        ++acc->count;
        for (size_t a = 0; a < nagg; ++a) {
          const AggSpec& spec = node.aggregates[a];
          if (spec.kind == AggSpec::Kind::kCount) continue;
          const double v = row[spec.column].AsDouble();
          acc->sums[a] += v;
          acc->mins[a] = std::min(acc->mins[a], v);
          acc->maxs[a] = std::max(acc->maxs[a], v);
        }
      }
    });

    // Pairwise tree-merge of the chunk tables. Each level pairs
    // locals[lo] with locals[lo + width] and folds the right table into
    // the left (first chunk that saw a key keeps its output position);
    // pairs at one level touch disjoint tables, so they merge in
    // parallel. This replaces the old sequential chunk-order fold, whose
    // O(nchunks * groups) rescans dominated when group count approaches
    // row count; the tree does O(log nchunks) levels of halving work.
    const auto merge_pair = [&](GroupTable* left, GroupTable* right) {
      for (GroupAccumulator& acc : right->groups) {
        GroupAccumulator* into = left->FindByAcc(acc);
        if (into == nullptr) {
          left->Append(std::move(acc));
          continue;
        }
        into->count += acc.count;
        for (size_t a = 0; a < nagg; ++a) {
          into->sums[a] += acc.sums[a];
          into->mins[a] = std::min(into->mins[a], acc.mins[a]);
          into->maxs[a] = std::max(into->maxs[a], acc.maxs[a]);
        }
      }
      right->groups.clear();
      right->buckets.clear();
    };
    for (int64_t width = 1; width < nchunks; width *= 2) {
      std::vector<int64_t> lefts;
      for (int64_t lo = 0; lo + width < nchunks; lo += 2 * width) {
        lefts.push_back(lo);
      }
      // Tables without a partner at this level carry over untouched.
      RunTaskRange(static_cast<int64_t>(lefts.size()), [&](int64_t p) {
        const int64_t lo = lefts[static_cast<size_t>(p)];
        merge_pair(&locals[static_cast<size_t>(lo)],
                   &locals[static_cast<size_t>(lo + width)]);
      });
    }
    GroupTable merged;
    if (nchunks > 0) merged = std::move(locals[0]);

    RowBlock out;
    out.schema = node.output_schema;
    out.prov_width = 0;  // provenance does not flow through aggregates
    out.values.reserve(merged.groups.size() *
                       (node.group_columns.size() + nagg));
    for (const GroupAccumulator& acc : merged.groups) {
      for (const Value& v : acc.group_values) out.values.push_back(v);
      for (size_t a = 0; a < nagg; ++a) {
        const AggSpec& spec = node.aggregates[a];
        double v = 0.0;
        switch (spec.kind) {
          case AggSpec::Kind::kCount:
            v = static_cast<double>(acc.count);
            break;
          case AggSpec::Kind::kSum:
            v = acc.sums[a];
            break;
          case AggSpec::Kind::kMin:
            v = acc.mins[a];
            break;
          case AggSpec::Kind::kMax:
            v = acc.maxs[a];
            break;
          case AggSpec::Kind::kAvg:
            v = acc.count > 0 ? acc.sums[a] / static_cast<double>(acc.count)
                              : 0.0;
            break;
        }
        out.values.push_back(Value::Double(v));
      }
      st.actual.no += 1.0;  // finalize op
    }
    st.out_rows = static_cast<double>(out.num_rows());
    st.actual.nt += st.out_rows;
    return out;
  }

  StatusOr<RowBlock> RunMaterialize(const PlanNode& node) {
    UQP_ASSIGN_OR_RETURN(RowBlock in, Run(*node.left));
    OpStats& st = ctx_->stats(node);
    st.id = node.id;
    st.type = node.type;
    st.left_rows = static_cast<double>(in.num_rows());
    st.actual.no += static_cast<double>(in.num_rows());
    st.actual.nt += static_cast<double>(in.num_rows());
    const double bytes =
        static_cast<double>(in.num_rows()) * in.schema.TupleWidthBytes();
    if (bytes > ctx_->engine().work_mem_bytes) {
      st.actual.ns += 2.0 * PagesFor(static_cast<double>(in.num_rows()),
                                     in.schema.TupleWidthBytes());
    }
    st.out_rows = static_cast<double>(in.num_rows());
    return in;
  }

  ExecContext* ctx_;
  std::vector<RowBlock>* retained_;
};

}  // namespace

StatusOr<ExecResult> Executor::Execute(const Plan& plan,
                                       const ExecOptions& options) const {
  if (plan.root() == nullptr) return Status::InvalidArgument("empty plan");
  if (plan.root()->id != 0) {
    return Status::FailedPrecondition("plan must be finalized before execution");
  }
  if (options.leaf_overrides != nullptr &&
      static_cast<int>(options.leaf_overrides->size()) != plan.num_leaves()) {
    return Status::InvalidArgument("leaf override count mismatch");
  }
  // Intra-query parallelism: use the caller's pool when provided (the
  // service layer shares one pool between plan-level and intra-plan
  // tasks), otherwise spin up an ephemeral one for this Execute call.
  const int threads = ResolveNumThreads(options.num_threads);
  TaskRunner* task_runner = threads > 1 ? options.task_runner : nullptr;
  std::unique_ptr<MorselPool> owned_pool;
  if (threads > 1 && task_runner == nullptr) {
    owned_pool = std::make_unique<MorselPool>(threads);
    task_runner = owned_pool.get();
  }
  ExecContext ctx(db_, options, plan.num_operators(), plan.num_leaves(),
                  task_runner);
  ExecResult result;
  if (options.retain_intermediates) {
    result.blocks.resize(static_cast<size_t>(plan.num_operators()));
  }
  NodeRunner runner(&ctx, options.retain_intermediates ? &result.blocks : nullptr);
  UQP_ASSIGN_OR_RETURN(RowBlock output, runner.Run(*plan.root()));

  result.output = std::move(output);
  result.ops = ctx.TakeStats();
  // Fill leaf-row products per node from the bound source tables.
  for (const PlanNode* node : plan.NodesPreorder()) {
    result.ops[static_cast<size_t>(node->id)].leaf_row_product =
        ctx.LeafProduct(node->leaf_begin, node->leaf_end);
  }
  return result;
}

}  // namespace uqp
