#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/cost_model.h"
#include "engine/plan.h"
#include "storage/database.h"

namespace uqp {

/// Abstract fan-out primitive for intra-query parallelism: runs every task
/// index in [0, n) exactly once, possibly on multiple threads, and returns
/// only when all of them finished. The calling thread participates, so an
/// implementation backed by a saturated pool degrades to the caller doing
/// all the work itself — never to a deadlock. Implementations must support
/// nested RunTasks calls from inside a task (the executor fans out both
/// join children and, within each, table chunks).
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;
  virtual void RunTasks(int64_t n, const std::function<void(int64_t)>& fn) = 0;
};

/// Work-sharing pool implementing TaskRunner: `num_threads - 1` helper
/// threads plus the calling thread pull task indexes from a shared atomic
/// counter (morsel-driven dispatch: skewed tasks rebalance dynamically,
/// while merge order stays the deterministic task-index order chosen by
/// the caller). The executor spins one up per Execute call when
/// ExecOptions asks for parallelism without supplying a pool; long-lived
/// callers (the sampling estimator, benches) can share one instance
/// across runs.
class MorselPool : public TaskRunner {
 public:
  explicit MorselPool(int num_threads);
  ~MorselPool() override;

  MorselPool(const MorselPool&) = delete;
  MorselPool& operator=(const MorselPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()) + 1; }

  void RunTasks(int64_t n, const std::function<void(int64_t)>& fn) override;

 private:
  struct Batch;
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  /// Helper threads; written only by the constructor and joined by the
  /// destructor, so concurrent readers (num_threads) race with nothing.
  std::vector<std::thread> threads_;
  /// Batches still attracting helpers. Workers prune exhausted fronts
  /// under the lock; RunTasks appends under the lock.
  std::deque<std::shared_ptr<Batch>> active_ UQP_GUARDED_BY(mu_);
  bool stop_ UQP_GUARDED_BY(mu_) = false;
};

/// Resolves a num_threads knob: <= 0 means "use the hardware concurrency",
/// anything else is taken literally (floored at 1).
int ResolveNumThreads(int num_threads);

/// Materialized intermediate result: schema + flat row-major values, plus
/// optional provenance. Provenance row i holds, for each leaf position in
/// the subtree that produced the block, the row index of the source tuple
/// in that leaf's (sample) table — the tuple annotations of paper §3.2.2
/// used to maintain the Q_{k,j,n} counters.
struct RowBlock {
  Schema schema;
  std::vector<Value> values;
  int prov_width = 0;
  std::vector<uint32_t> prov;

  int64_t num_rows() const {
    const int n = schema.num_columns();
    return n == 0 ? 0 : static_cast<int64_t>(values.size()) / n;
  }
  RowRef row(int64_t r) const {
    return RowRef{values.data() + r * schema.num_columns(), schema.num_columns()};
  }
  const uint32_t* prov_row(int64_t r) const {
    return prov.data() + r * prov_width;
  }
};

/// Per-operator execution statistics: the observed resource counters (the
/// ground-truth n's of paper Eq. 1) and cardinalities.
struct OpStats {
  int id = -1;
  OpType type = OpType::kSeqScan;
  ResourceVector actual;     ///< observed counter values
  double left_rows = 0.0;    ///< Nl
  double right_rows = 0.0;   ///< Nr
  double out_rows = 0.0;     ///< M
  /// Product of source-table row counts over the subtree's leaves (the
  /// |R| of paper Eq. 3, computed against whatever tables were bound —
  /// base tables for real runs, sample tables for estimation runs).
  double leaf_row_product = 1.0;
  /// M / leaf_row_product.
  double selectivity() const {
    return leaf_row_product > 0.0 ? out_rows / leaf_row_product : 0.0;
  }
};

/// Execution options.
struct ExecOptions {
  /// Collect per-row provenance (enabled for sampling-estimation runs).
  bool collect_provenance = false;
  /// If non-null, leaf scan i reads from (*leaf_overrides)[i] instead of
  /// the base table — this is how the estimator runs the plan over sample
  /// tables, binding a distinct sample per leaf occurrence.
  const std::vector<const Table*>* leaf_overrides = nullptr;
  /// Keep a copy of every operator's output block (sampling-estimation
  /// runs post-process them into the Q_{k,j,n} counters).
  bool retain_intermediates = false;
  /// Rows per inner-loop chunk: filters and join probes process their
  /// input in RowBlock chunks of at most this many rows (vectorized-style
  /// batched execution — predicates evaluate column-at-a-time into a
  /// selection mask, survivors are copied in runs). 1 reproduces the
  /// historical tuple-at-a-time loop; output and counters are identical
  /// for every value.
  int64_t max_batch_size = 1024;
  /// Intra-query parallelism: with more than one thread, filter scans,
  /// index-scan gathers, hash-join builds/probes, nest-loop outer loops,
  /// sort leaf blocks + merge-tree levels, per-chunk aggregation tables
  /// and merge-join group emission are sharded across a task pool, and
  /// independent join children run concurrently. 1 is the historical
  /// sequential path; <= 0 means hardware concurrency. The determinism
  /// contract (enforced by tests/parallel_parity_test.cc): output rows,
  /// provenance, retained blocks and every resource counter are
  /// bit-identical at every value. Three ingredients: task results merge
  /// (or place in-place) in task order; task-accumulated counters are
  /// integer-valued, so double addition regroups exactly; and operators
  /// whose algorithm shape matters — sort's merge tree, aggregation's
  /// per-chunk tables — run the SAME fixed shape (determined by row count
  /// and max_batch_size, never thread count) at num_threads == 1 too.
  /// Sort comparison counts are therefore defined by the blocked merge
  /// tree over std::sort-sorted leaf blocks (deterministic for a given
  /// standard library, invariant to thread count — though not portable
  /// across standard-library implementations, whose introsorts compare
  /// differently), and aggregate output order by first appearance in the
  /// input.
  int num_threads = 1;
  /// Pool the shards run on. When null and num_threads > 1, the executor
  /// spins up an ephemeral MorselPool for the duration of the Execute
  /// call; callers owning a pool (PredictionService shares its worker
  /// pool between plan-level and intra-plan tasks) pass it here.
  TaskRunner* task_runner = nullptr;
  /// Cooperative cancellation probe. When set, the executor polls it at
  /// operator boundaries and at morsel-shard boundaries inside
  /// RunTaskRange / RunShardedTasks; once it returns true the run stops
  /// consuming pool time (remaining shard bodies become no-ops) and
  /// Execute resolves with Status::DeadlineExceeded. The probe must be
  /// callable from any pool thread. Cancellation never yields a partial
  /// result — a cancelled run returns only the error. Null means "never
  /// cancelled" and costs nothing on the hot path.
  std::function<bool()> cancelled;
  EngineConfig engine;
};

/// Result of executing a plan.
struct ExecResult {
  RowBlock output;
  std::vector<OpStats> ops;  ///< indexed by operator id
  /// Per-operator output blocks when retain_intermediates was set.
  std::vector<RowBlock> blocks;
};

/// Single-threaded materializing executor. Operators maintain the exact
/// PostgreSQL-style resource counters; these deliberately deviate from the
/// optimizer's closed-form estimates (hash-chain visits, true distinct heap
/// pages, true sort comparisons) so that the cost model carries a realistic
/// "error in g" as in the paper.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  StatusOr<ExecResult> Execute(const Plan& plan, const ExecOptions& options) const;

 private:
  const Database* db_;
};

}  // namespace uqp
