#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "storage/table.h"
#include "storage/value.h"

namespace uqp {

/// Comparison operators for predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Boolean scalar expression tree over one row. Leaves compare a column
/// against a constant (range predicates are numeric-only; strings support
/// equality). Interior nodes are AND / OR / NOT.
///
/// Expressions deliberately stay simple: they are exactly the predicate
/// language the paper's workloads need (Picasso-style range selections,
/// TPC-H filters) and each comparison node counts as one CPU "operation"
/// for the c_o cost unit.
struct Expr {
  enum class Kind { kCmp, kCmpCol, kAnd, kOr, kNot };

  Kind kind = Kind::kCmp;
  // kCmp / kCmpCol:
  CmpOp op = CmpOp::kEq;
  int column = -1;
  Value constant;    // kCmp only
  int column2 = -1;  // kCmpCol only
  // kAnd / kOr / kNot:
  ExprPtr lhs;
  ExprPtr rhs;

  static ExprPtr Cmp(int column, CmpOp op, Value constant);
  /// column <op> column2 (numeric columns).
  static ExprPtr CmpColumns(int column, CmpOp op, int column2);
  static ExprPtr And(ExprPtr a, ExprPtr b);
  static ExprPtr Or(ExprPtr a, ExprPtr b);
  static ExprPtr Not(ExprPtr a);
  /// column BETWEEN lo AND hi (inclusive), as an AND of two comparisons.
  static ExprPtr Between(int column, Value lo, Value hi);
  /// String equality against an interned constant.
  static ExprPtr StrEq(int column, const std::string& s);

  std::string ToString(const Schema* schema = nullptr) const;
};

/// Evaluates a predicate against a row.
bool EvalPredicate(const Expr& e, RowRef row);

/// Vectorized predicate evaluation over a contiguous chunk of `n` rows
/// laid out row-major with `stride` values per row:
///   mask[i] = e(rows + i * stride)   for i in [0, n).
/// Column-at-a-time: each comparison node runs one tight loop over the
/// chunk instead of the per-row tree walk of EvalPredicate. ANDs narrow
/// the mask (right side only probes lanes still set), ORs widen it, so a
/// chunk evaluates the same comparisons the scalar path would up to
/// short-circuit granularity. Semantically identical to calling
/// EvalPredicate per row (predicates are pure).
void EvalPredicateBatch(const Expr& e, const Value* rows, int stride,
                        int64_t n, uint8_t* mask);

/// Number of comparison nodes (CPU operations charged per tuple).
int PredicateOpCount(const Expr* e);

/// Structural 64-bit fingerprint: kind, operator, columns and constants,
/// recursively. Stable within a process (string constants hash by interned
/// pool id); null hashes to a fixed tag. Used by PlanFingerprint.
uint64_t ExprFingerprint(const Expr* e);

/// Appends an unambiguous byte serialization of the expression tree to
/// `out`: two expressions serialize identically iff they are structurally
/// equal (same shape, operators, columns and constants; string constants
/// compare by interned pool id, like ExprFingerprint). Used by
/// PlanStructuralKey to confirm fingerprint cache hits exactly.
void AppendExprKey(const Expr* e, std::string* out);

/// Appends `v` to `out` as 8 little-endian bytes — the shared fixed-width
/// integer encoding of the structural-key serializations.
void AppendKeyU64(std::string* out, uint64_t v);

/// Deep copy of an expression tree: the result shares no Expr node with
/// the input (string constants still alias the process-wide intern pool,
/// which is immortal). Expressions are immutable and refcounted, so
/// sharing an ExprPtr is normally enough — this exists for owners that
/// must be independent of every allocation the builder made, e.g. the
/// service's plan registry, whose clones outlive the caller's plan.
ExprPtr CloneExprTree(const ExprPtr& e);

/// Remaps column indexes by adding `offset` (used when pushing predicates
/// above a join whose left side contributes `offset` columns).
ExprPtr ShiftColumns(const ExprPtr& e, int offset);

/// If the predicate is a conjunction of numeric comparisons that all refer
/// to `column`, intersects them into [*lo, *hi] and returns true. Used by
/// the index-scan operator and by the planner's access-path choice.
/// A null predicate is a valid (infinite) range.
bool TryExtractRange(const Expr* e, int column, double* lo, double* hi);

/// Loose variant for index scans with residual filters (PostgreSQL's
/// "Index Cond" + "Filter" split): walks top-level conjunctions, tightens
/// [*lo, *hi] from the comparisons on `column`, and reports:
///   *has_range — at least one comparison on `column` was found;
///   *pure      — the whole predicate was consumed by the range (no
///                residual conjuncts remain).
void CollectIndexRange(const Expr* e, int column, double* lo, double* hi,
                       bool* has_range, bool* pure);

}  // namespace uqp
