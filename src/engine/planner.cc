#include "engine/planner.h"

#include <limits>

#include "common/logging.h"

namespace uqp {

namespace {

/// Estimated selectivity of the range the predicate implies over an
/// indexed column, or 1.0 if the predicate has no range on it.
double IndexRangeSelectivity(const Expr* e, int column, const TableStats& stats) {
  if (e == nullptr) return 1.0;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool has_range = false, pure = true;
  CollectIndexRange(e, column, &lo, &hi, &has_range, &pure);
  if (!has_range) return 1.0;
  if (column >= static_cast<int>(stats.columns.size())) return 1.0;
  const ColumnStats& cs = stats.columns[static_cast<size_t>(column)];
  if (!cs.numeric || cs.histogram.empty()) return 1.0;
  return cs.histogram.FractionRange(std::max(lo, cs.histogram.min()),
                                    std::min(hi, cs.histogram.max()));
}

void RewriteNode(PlanNode* node, const Database& db,
                 const CardinalityEstimator& cards,
                 const std::vector<double>& rows_by_id,
                 const PlannerConfig& config) {
  if (node->left != nullptr) {
    RewriteNode(node->left.get(), db, cards, rows_by_id, config);
  }
  if (node->right != nullptr) {
    RewriteNode(node->right.get(), db, cards, rows_by_id, config);
  }

  if (node->type == OpType::kSeqScan && node->predicate != nullptr) {
    const Table& table = db.GetTable(node->table_name);
    const TableStats& stats = db.catalog().Get(node->table_name);
    (void)rows_by_id;
    // Choose the indexed column with the most selective range implied by
    // the predicate; remaining conjuncts run as a residual filter
    // (PostgreSQL's Index Cond + Filter).
    int best_col = -1;
    double best_sel = config.index_selectivity_threshold;
    for (int c = 0; c < table.schema().num_columns(); ++c) {
      if (!table.HasIndex(c)) continue;
      const double sel = IndexRangeSelectivity(node->predicate.get(), c, stats);
      if (sel <= best_sel) {
        best_sel = sel;
        best_col = c;
      }
    }
    if (best_col >= 0) {
      node->type = OpType::kIndexScan;
      node->index_column = best_col;
    }
    return;
  }

  if (node->type == OpType::kHashJoin) {
    if (node->join_keys.empty()) {
      // Cross join / pure residual join must run as a nested loop.
      node->type = OpType::kNestLoopJoin;
      return;
    }
    const double inner_rows = rows_by_id[static_cast<size_t>(node->right->id)];
    if (inner_rows <= config.nestloop_inner_rows) {
      node->type = OpType::kNestLoopJoin;
    }
  }
}

}  // namespace

StatusOr<Plan> OptimizePlan(std::unique_ptr<PlanNode> root, const Database& db,
                            const PlannerConfig& config) {
  if (root == nullptr) return Status::InvalidArgument("empty logical tree");
  Plan plan(std::move(root));
  UQP_RETURN_IF_ERROR(plan.Finalize(db));

  CardinalityEstimator cards(&db);
  const std::vector<double> rows_by_id = cards.EstimatePlan(plan);
  RewriteNode(plan.mutable_root(), db, cards, rows_by_id, config);

  // Operator types changed; re-derive ids/schemas (ids are unchanged by the
  // rewrite but Finalize also re-validates index scans).
  UQP_RETURN_IF_ERROR(plan.Finalize(db));
  return plan;
}

}  // namespace uqp
