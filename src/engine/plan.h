#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/expr.h"
#include "storage/database.h"

namespace uqp {

/// Physical operator types (paper §2: unary/binary operators in a rooted
/// binary tree; leaves are scans).
enum class OpType {
  kSeqScan,
  kIndexScan,
  kHashJoin,
  kMergeJoin,
  kNestLoopJoin,
  kSort,
  kAggregate,
  kMaterialize,
};

const char* OpTypeName(OpType t);

bool IsScan(OpType t);
bool IsJoin(OpType t);
/// Pass-through operators emit exactly their input (M = Nl): their
/// selectivity is their child's selectivity variable.
bool IsPassThrough(OpType t);

/// Aggregate function kinds.
struct AggSpec {
  enum class Kind { kCount, kSum, kMin, kMax, kAvg };
  Kind kind = Kind::kCount;
  int column = -1;  ///< input column; ignored for kCount
  std::string name = "agg";
};

/// One node of a physical plan tree.
struct PlanNode {
  OpType type = OpType::kSeqScan;

  // --- scans ---
  std::string table_name;
  /// Scan filter, or join residual filter (over the concatenated child
  /// schemas), evaluated after the join keys match.
  ExprPtr predicate;
  /// For index scans: the indexed column; the predicate must be a range or
  /// equality over exactly this column.
  int index_column = -1;

  // --- joins: equi-join keys as (left column, right column) indexes into
  // the child output schemas ---
  std::vector<std::pair<int, int>> join_keys;

  // --- sort ---
  std::vector<int> sort_columns;

  // --- aggregate ---
  std::vector<int> group_columns;
  std::vector<AggSpec> aggregates;

  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  // ----- Derived by Plan::Finalize -----
  int id = -1;                            ///< preorder operator id
  Schema output_schema;
  int leaf_begin = 0;                     ///< [leaf_begin, leaf_end) leaf span
  int leaf_end = 0;
  bool has_aggregate_below = false;       ///< some strict descendant aggregates
  double leaf_row_product = 1.0;          ///< Π |R| over leaf tables of subtree

  bool is_unary() const { return right == nullptr; }
};

/// The interned identity of a plan: its 64-bit structural fingerprint and
/// the canonical byte serialization of its structure (PlanStructuralKey —
/// typically a few hundred bytes). Computed lazily once per Plan object
/// and shared by reference from there on: the service layer's cache
/// entries, in-flight records and async requests all alias one immutable
/// instance instead of re-serializing the plan per request and storing a
/// copy per table.
struct PlanIdentity {
  uint64_t fingerprint = 0;
  std::string key;
};

/// A finalized physical plan: ids assigned, schemas derived, leaf order
/// fixed. Leaf order is the in-order sequence of scan operators; the
/// sampling layer uses leaf positions to bind (possibly distinct) sample
/// tables per occurrence of a relation.
class Plan {
 public:
  Plan() = default;
  explicit Plan(std::unique_ptr<PlanNode> root) : root_(std::move(root)) {}

  /// Assigns operator ids, derives output schemas and leaf spans.
  /// Fails if referenced tables/columns don't exist. Drops any memoized
  /// identity: the plan may have been structurally edited before the
  /// (re-)finalization.
  Status Finalize(const Database& db);

  /// Deep copy that preserves the finalized state: operator ids, derived
  /// schemas, leaf spans and counters are copied verbatim and expression
  /// trees are cloned node for node, so the copy shares no allocation with
  /// the original and needs no re-Finalize (and hence no Database). This
  /// is the ownership primitive behind the service's plan registry:
  /// PredictAsync clones the caller's plan, so the caller may destroy it
  /// the moment the call returns.
  Plan Clone() const;

  const PlanNode* root() const { return root_.get(); }
  PlanNode* mutable_root() { return root_.get(); }

  int num_operators() const { return num_operators_; }
  int num_leaves() const { return num_leaves_; }

  /// All nodes in preorder (index == node id).
  std::vector<const PlanNode*> NodesPreorder() const;

  /// Leaf (scan) nodes left to right (index == leaf position).
  std::vector<const PlanNode*> Leaves() const;

  /// Pretty-printed tree for debugging / examples.
  std::string ToString() const;

  /// The memoized structural identity (fingerprint + canonical key) of
  /// this plan. Computed on first use — thread-safe: concurrent first
  /// calls race benignly and every caller ends up sharing one immutable
  /// instance — and aliased by every later call, so a recurring plan
  /// object pays the O(plan) serialization exactly once no matter how
  /// many requests it is submitted to. Clone() shares the memo (the copy
  /// is structurally identical by construction). The plan must not be
  /// structurally mutated after the first Identity() call without
  /// re-running Finalize, which drops the memo.
  std::shared_ptr<const PlanIdentity> Identity() const;

 private:
  std::unique_ptr<PlanNode> root_;
  int num_operators_ = 0;
  int num_leaves_ = 0;
  /// Lazily published identity; accessed only through the std::atomic_*
  /// shared_ptr free functions (plain moves are fine: a Plan is never
  /// moved concurrently with Identity()).
  mutable std::shared_ptr<const PlanIdentity> identity_;
};

/// Fluent helpers for building plan trees in workloads/tests.
std::unique_ptr<PlanNode> MakeSeqScan(const std::string& table, ExprPtr predicate);
std::unique_ptr<PlanNode> MakeIndexScan(const std::string& table, int column,
                                        ExprPtr predicate);
std::unique_ptr<PlanNode> MakeHashJoin(std::unique_ptr<PlanNode> left,
                                       std::unique_ptr<PlanNode> right,
                                       std::vector<std::pair<int, int>> keys,
                                       ExprPtr residual = nullptr);
std::unique_ptr<PlanNode> MakeMergeJoin(std::unique_ptr<PlanNode> left,
                                        std::unique_ptr<PlanNode> right,
                                        std::vector<std::pair<int, int>> keys,
                                        ExprPtr residual = nullptr);
std::unique_ptr<PlanNode> MakeNestLoopJoin(std::unique_ptr<PlanNode> left,
                                           std::unique_ptr<PlanNode> right,
                                           std::vector<std::pair<int, int>> keys,
                                           ExprPtr residual = nullptr);
std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> child,
                                   std::vector<int> sort_columns);
std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> child,
                                        std::vector<int> group_columns,
                                        std::vector<AggSpec> aggregates);
std::unique_ptr<PlanNode> MakeMaterialize(std::unique_ptr<PlanNode> child);

/// Deep copy of a plan subtree (derived fields reset; predicates shared).
/// For a copy of a whole finalized plan use Plan::Clone, which also
/// carries the derived fields and clones the expression trees.
std::unique_ptr<PlanNode> ClonePlanTree(const PlanNode& node);

/// Structural 64-bit fingerprint of a finalized plan: operator types and
/// tree shape, table names, predicates, join keys, sort/group columns and
/// aggregate specs. Two plans with the same fingerprint execute the same
/// physical query, so their sample-run artifacts are interchangeable —
/// this is the cache key of the service layer. (A 64-bit hash: collisions
/// are possible in principle but need ~2³² distinct cached plans to
/// become likely.)
uint64_t PlanFingerprint(const Plan& plan);

/// Canonical byte serialization of the plan structure: two plans produce
/// the same key iff they are structurally equal (same tree shape, operator
/// types, tables, predicates, join keys, sort/group columns and aggregate
/// specs) — exactly the equivalence PlanFingerprint approximates. The
/// service layer stores this key alongside each cache entry and confirms
/// it on every fingerprint hit, so a 64-bit hash collision degrades to a
/// cache miss instead of serving another plan's artifacts.
std::string PlanStructuralKey(const Plan& plan);

}  // namespace uqp
