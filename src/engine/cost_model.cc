#include "engine/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "engine/cardinality.h"

namespace uqp {

double ResourceVector::Get(int cost_unit) const {
  switch (cost_unit) {
    case 0:
      return ns;
    case 1:
      return nr;
    case 2:
      return nt;
    case 3:
      return ni;
    case 4:
      return no;
  }
  UQP_CHECK(false) << "bad cost unit index " << cost_unit;
  return 0.0;
}

void ResourceVector::Set(int cost_unit, double v) {
  switch (cost_unit) {
    case 0:
      ns = v;
      return;
    case 1:
      nr = v;
      return;
    case 2:
      nt = v;
      return;
    case 3:
      ni = v;
      return;
    case 4:
      no = v;
      return;
  }
  UQP_CHECK(false) << "bad cost unit index " << cost_unit;
}

double ExpectedPageFetches(double rows, double pages) {
  if (pages <= 0.0 || rows <= 0.0) return 0.0;
  // Expected number of distinct pages when `rows` tuples are spread
  // uniformly at random over `pages` pages:
  //   pages * (1 - (1 - 1/pages)^rows)
  const double frac = 1.0 - std::pow(1.0 - 1.0 / pages, rows);
  return pages * frac;
}

namespace {
double PagesFor(double rows, double width_bytes) {
  if (rows <= 0.0) return 0.0;
  return std::ceil(rows * std::max(8.0, width_bytes) / kPageSizeBytes);
}

double Log2Rows(double rows) { return std::log2(std::max(2.0, rows)); }
}  // namespace

ResourceVector EstimateResources(const OperatorContext& ctx,
                                 const EngineConfig& config) {
  ResourceVector r;
  const double quals = std::max(0, ctx.qual_ops);
  switch (ctx.type) {
    case OpType::kSeqScan:
      r.ns = ctx.table_pages;
      r.nt = ctx.table_rows;
      r.no = ctx.table_rows * quals;
      break;
    case OpType::kIndexScan: {
      // Descent plus one index entry per range match; heap fetches follow
      // the uncorrelated-page approximation. Residual filters make the
      // range matches exceed the output rows by index_range_ratio.
      const double matches = std::min(
          ctx.table_rows, ctx.out_rows * std::max(1.0, ctx.index_range_ratio));
      r.ni = matches + Log2Rows(ctx.table_rows);
      r.nr = ExpectedPageFetches(matches, ctx.table_pages);
      r.nt = matches;
      r.no = matches * quals;
      break;
    }
    case OpType::kHashJoin: {
      r.no = ctx.left_rows + ctx.right_rows;
      r.nt = ctx.out_rows;
      const double build_bytes = ctx.right_rows * ctx.right_width;
      if (build_bytes > config.work_mem_bytes) {
        // Grace hash: write + re-read both inputs.
        r.ns = 2.0 * (PagesFor(ctx.left_rows, ctx.left_width) +
                      PagesFor(ctx.right_rows, ctx.right_width));
      }
      break;
    }
    case OpType::kMergeJoin:
      r.no = ctx.left_rows + ctx.right_rows;
      r.nt = ctx.out_rows;
      break;
    case OpType::kNestLoopJoin:
      r.no = ctx.left_rows * ctx.right_rows;
      r.nt = ctx.out_rows;
      break;
    case OpType::kSort: {
      r.no = ctx.left_rows * Log2Rows(ctx.left_rows);
      r.nt = ctx.left_rows;
      const double bytes = ctx.left_rows * ctx.left_width;
      if (bytes > config.work_mem_bytes) {
        r.ns = 3.0 * PagesFor(ctx.left_rows, ctx.left_width);
      }
      break;
    }
    case OpType::kAggregate:
      r.no = 2.0 * ctx.left_rows;
      r.nt = ctx.out_rows;
      break;
    case OpType::kMaterialize: {
      r.no = ctx.left_rows;
      r.nt = ctx.left_rows;
      const double bytes = ctx.left_rows * ctx.left_width;
      if (bytes > config.work_mem_bytes) {
        r.ns = 2.0 * PagesFor(ctx.left_rows, ctx.left_width);
      }
      break;
    }
  }
  return r;
}

double IndexRangeRatio(const PlanNode& node, const Database& db) {
  if (node.type != OpType::kIndexScan || node.predicate == nullptr) return 1.0;
  if (!db.catalog().Has(node.table_name)) return 1.0;
  const TableStats& stats = db.catalog().Get(node.table_name);
  if (node.index_column < 0 ||
      node.index_column >= static_cast<int>(stats.columns.size())) {
    return 1.0;
  }
  const ColumnStats& cs = stats.columns[static_cast<size_t>(node.index_column)];
  if (!cs.numeric || cs.histogram.empty()) return 1.0;

  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool has_range = false, pure = true;
  CollectIndexRange(node.predicate.get(), node.index_column, &lo, &hi,
                    &has_range, &pure);
  if (!has_range || pure) return 1.0;
  const double min_sel = stats.row_count > 0
                             ? 1.0 / static_cast<double>(stats.row_count)
                             : 1e-9;
  const double sel_range =
      std::max(min_sel, cs.histogram.FractionRange(
                            std::max(lo, cs.histogram.min()),
                            std::min(hi, cs.histogram.max())));
  const CardinalityEstimator cards(&db);
  const double sel_full = std::max(
      min_sel, cards.PredicateSelectivity(node.predicate.get(), node.table_name));
  return std::max(1.0, sel_range / sel_full);
}

ResourceVector EstimateNodeResources(const PlanNode& node, const Database& db,
                                     const std::vector<double>& rows_by_id,
                                     const EngineConfig& config) {
  OperatorContext ctx;
  ctx.type = node.type;
  ctx.qual_ops = PredicateOpCount(node.predicate.get());
  ctx.out_rows = rows_by_id[static_cast<size_t>(node.id)];
  if (IsScan(node.type)) {
    const Table& t = db.GetTable(node.table_name);
    ctx.table_rows = static_cast<double>(t.num_rows());
    ctx.table_pages = static_cast<double>(t.num_pages());
    ctx.index_range_ratio = IndexRangeRatio(node, db);
  }
  if (node.left != nullptr) {
    ctx.left_rows = rows_by_id[static_cast<size_t>(node.left->id)];
    ctx.left_width = node.left->output_schema.TupleWidthBytes();
  }
  if (node.right != nullptr) {
    ctx.right_rows = rows_by_id[static_cast<size_t>(node.right->id)];
    ctx.right_width = node.right->output_schema.TupleWidthBytes();
  }
  return EstimateResources(ctx, config);
}

double OptimizerScalarCost(const Plan& plan, const Database& db) {
  // PostgreSQL's default cost weights (paper Table 1's charge units).
  constexpr double kSeqPage = 1.0;
  constexpr double kRandPage = 4.0;
  constexpr double kTuple = 0.01;
  constexpr double kIndexTuple = 0.005;
  constexpr double kOperator = 0.0025;
  CardinalityEstimator estimator(&db);
  const std::vector<double> rows = estimator.EstimatePlan(plan);
  const EngineConfig config;
  double cost = 0.0;
  for (const PlanNode* node : plan.NodesPreorder()) {
    const ResourceVector r = EstimateNodeResources(*node, db, rows, config);
    cost += r.Dot(kSeqPage, kRandPage, kTuple, kIndexTuple, kOperator);
  }
  return cost;
}

}  // namespace uqp
