#include "costfunc/fitter.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "cost/units.h"
#include "math/nnls.h"

namespace uqp {

namespace {

/// Grid points over the likely range of a selectivity: [μ - 3σ, μ + 3σ]
/// clamped to [0, 1] (paper §4.2; Pr(X in I) ≈ 0.997). Degenerate
/// intervals are widened slightly for numerical conditioning.
std::vector<double> GridPoints(const Gaussian& g, int subintervals) {
  double lo = g.mean - 3.0 * g.stddev();
  double hi = g.mean + 3.0 * g.stddev();
  lo = std::clamp(lo, 0.0, 1.0);
  hi = std::clamp(hi, 0.0, 1.0);
  if (hi - lo < 1e-9) {
    const double pad = std::max(1e-4, 0.05 * std::max(g.mean, 1e-3));
    lo = std::clamp(g.mean - pad, 0.0, 1.0);
    hi = std::clamp(g.mean + pad, 0.0, 1.0);
    if (hi - lo < 1e-9) hi = std::min(1.0, lo + 1e-4);
  }
  std::vector<double> points;
  points.reserve(static_cast<size_t>(subintervals) + 1);
  for (int i = 0; i <= subintervals; ++i) {
    points.push_back(lo + (hi - lo) * static_cast<double>(i) / subintervals);
  }
  return points;
}

/// The cost-model oracle: expected counter value for one operator at a
/// selectivity point. Cardinalities are reconstructed from selectivities
/// via the leaf-row products (Nl = |Rl| Xl etc., paper §4.1).
class Oracle {
 public:
  Oracle(const PlanNode& node, const Database& db, const EngineConfig& engine)
      : node_(node), engine_(engine) {
    ctx_.type = node.type;
    ctx_.qual_ops = PredicateOpCount(node.predicate.get());
    if (IsScan(node.type)) {
      const Table& t = db.GetTable(node.table_name);
      ctx_.table_rows = static_cast<double>(t.num_rows());
      ctx_.table_pages = static_cast<double>(t.num_pages());
      ctx_.index_range_ratio = IndexRangeRatio(node, db);
    }
    if (node.left != nullptr) {
      ctx_.left_width = node.left->output_schema.TupleWidthBytes();
    }
    if (node.right != nullptr) {
      ctx_.right_width = node.right->output_schema.TupleWidthBytes();
    }
  }

  double Counter(int cost_unit, double x, double xl, double xr) const {
    OperatorContext ctx = ctx_;
    ctx.out_rows = std::max(0.0, x) * node_.leaf_row_product;
    if (node_.left != nullptr) {
      ctx.left_rows = std::max(0.0, xl) * node_.left->leaf_row_product;
    }
    if (node_.right != nullptr) {
      ctx.right_rows = std::max(0.0, xr) * node_.right->leaf_row_product;
    }
    return EstimateResources(ctx, engine_).Get(cost_unit);
  }

 private:
  const PlanNode& node_;
  EngineConfig engine_;
  OperatorContext ctx_;
};

struct FitPoint {
  double x, xl, xr;
  double f;
};

StatusOr<std::vector<double>> FitCoefficients(CostFuncType type,
                                              const std::vector<FitPoint>& pts) {
  const int ncoef = CostFuncNumCoefficients(type);
  if (type == CostFuncType::kConstant) {
    // Single coefficient: the oracle value itself.
    return std::vector<double>{pts.empty() ? 0.0 : pts[0].f};
  }
  NnlsProblem problem;
  problem.rows = static_cast<int>(pts.size());
  problem.cols = ncoef;
  problem.nonnegative.assign(static_cast<size_t>(ncoef), true);
  problem.nonnegative[static_cast<size_t>(ncoef) - 1] = false;  // constant free
  problem.a.reserve(pts.size() * static_cast<size_t>(ncoef));
  problem.y.reserve(pts.size());
  for (const FitPoint& p : pts) {
    switch (type) {
      case CostFuncType::kLinearOutput:
        problem.a.insert(problem.a.end(), {p.x, 1.0});
        break;
      case CostFuncType::kLinearLeft:
        problem.a.insert(problem.a.end(), {p.xl, 1.0});
        break;
      case CostFuncType::kQuadraticLeft:
        problem.a.insert(problem.a.end(), {p.xl * p.xl, p.xl, 1.0});
        break;
      case CostFuncType::kLinearBoth:
        problem.a.insert(problem.a.end(), {p.xl, p.xr, 1.0});
        break;
      case CostFuncType::kBilinear:
        problem.a.insert(problem.a.end(), {p.xl * p.xr, p.xl, p.xr, 1.0});
        break;
      case CostFuncType::kConstant:
        break;
    }
    problem.y.push_back(p.f);
  }
  UQP_ASSIGN_OR_RETURN(NnlsResult result, SolveNnls(problem));
  return result.coefficients;
}

}  // namespace

StatusOr<OperatorCostFunctions> CostFunctionFitter::FitNode(
    const PlanNode& node, const PlanEstimates& estimates) const {
  OperatorCostFunctions out;
  out.node_id = node.id;
  out.op_type = node.type;
  out.var_own = estimates.variable_of_node[static_cast<size_t>(node.id)];
  const Gaussian gx = estimates.ops[static_cast<size_t>(node.id)].AsGaussian();
  Gaussian gl(1.0, 0.0), gr(1.0, 0.0);
  if (node.left != nullptr) {
    out.var_left = estimates.variable_of_node[static_cast<size_t>(node.left->id)];
    gl = estimates.ops[static_cast<size_t>(node.left->id)].AsGaussian();
  }
  if (node.right != nullptr) {
    out.var_right = estimates.variable_of_node[static_cast<size_t>(node.right->id)];
    gr = estimates.ops[static_cast<size_t>(node.right->id)].AsGaussian();
  }

  const Oracle oracle(node, *db_, options_.engine);
  for (int unit = 0; unit < kNumCostUnits; ++unit) {
    const CostFuncType type = CostFunctionTypeFor(node.type, unit);
    std::vector<FitPoint> pts;
    switch (type) {
      case CostFuncType::kConstant:
        pts.push_back({gx.mean, gl.mean, gr.mean,
                       oracle.Counter(unit, gx.mean, gl.mean, gr.mean)});
        break;
      case CostFuncType::kLinearOutput:
        for (double x : GridPoints(gx, options_.grid_1d)) {
          pts.push_back({x, gl.mean, gr.mean,
                         oracle.Counter(unit, x, gl.mean, gr.mean)});
        }
        break;
      case CostFuncType::kLinearLeft:
      case CostFuncType::kQuadraticLeft:
        for (double xl : GridPoints(gl, options_.grid_1d)) {
          pts.push_back({gx.mean, xl, gr.mean,
                         oracle.Counter(unit, gx.mean, xl, gr.mean)});
        }
        break;
      case CostFuncType::kLinearBoth:
      case CostFuncType::kBilinear:
        for (double xl : GridPoints(gl, options_.grid_2d)) {
          for (double xr : GridPoints(gr, options_.grid_2d)) {
            pts.push_back({gx.mean, xl, xr,
                           oracle.Counter(unit, gx.mean, xl, xr)});
          }
        }
        break;
    }
    UQP_ASSIGN_OR_RETURN(std::vector<double> coefs, FitCoefficients(type, pts));
    out.funcs[unit].type = type;
    out.funcs[unit].b = std::move(coefs);
  }
  return out;
}

StatusOr<std::vector<OperatorCostFunctions>> CostFunctionFitter::FitPlan(
    const Plan& plan, const PlanEstimates& estimates) const {
  std::vector<OperatorCostFunctions> out(
      static_cast<size_t>(plan.num_operators()));
  for (const PlanNode* node : plan.NodesPreorder()) {
    UQP_ASSIGN_OR_RETURN(out[static_cast<size_t>(node->id)],
                         FitNode(*node, estimates));
  }
  return out;
}

}  // namespace uqp
