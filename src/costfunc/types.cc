#include "costfunc/types.h"

#include <cstdio>

#include "common/logging.h"
#include "cost/units.h"

namespace uqp {

const char* CostFuncTypeName(CostFuncType t) {
  switch (t) {
    case CostFuncType::kConstant:
      return "C1";
    case CostFuncType::kLinearOutput:
      return "C2";
    case CostFuncType::kLinearLeft:
      return "C3";
    case CostFuncType::kQuadraticLeft:
      return "C4";
    case CostFuncType::kLinearBoth:
      return "C5";
    case CostFuncType::kBilinear:
      return "C6";
  }
  return "?";
}

int CostFuncNumCoefficients(CostFuncType t) {
  switch (t) {
    case CostFuncType::kConstant:
      return 1;
    case CostFuncType::kLinearOutput:
    case CostFuncType::kLinearLeft:
      return 2;
    case CostFuncType::kQuadraticLeft:
    case CostFuncType::kLinearBoth:
      return 3;
    case CostFuncType::kBilinear:
      return 4;
  }
  return 1;
}

CostFuncType CostFunctionTypeFor(OpType op, int cost_unit) {
  // Unreferenced counters fall through to kConstant and fit to 0.
  switch (op) {
    case OpType::kSeqScan:
      return CostFuncType::kConstant;  // pages/tuples/quals fixed by |R|
    case OpType::kIndexScan:
      return CostFuncType::kLinearOutput;  // nr, ni, nt, no all ~ M
    case OpType::kHashJoin:
    case OpType::kMergeJoin:
      // Output assembly is charged per emitted tuple; everything else is
      // linear in the input cardinalities.
      return cost_unit == kCostTuple ? CostFuncType::kLinearOutput
                                     : CostFuncType::kLinearBoth;
    case OpType::kNestLoopJoin:
      return cost_unit == kCostTuple ? CostFuncType::kLinearOutput
                                     : CostFuncType::kBilinear;
    case OpType::kSort:
      // The N log N comparison count is approximated by a quadratic
      // polynomial (§4.1's argument for C4).
      return cost_unit == kCostOperator ? CostFuncType::kQuadraticLeft
                                        : CostFuncType::kLinearLeft;
    case OpType::kAggregate:
      return cost_unit == kCostTuple ? CostFuncType::kLinearOutput
                                     : CostFuncType::kLinearLeft;
    case OpType::kMaterialize:
      return CostFuncType::kLinearLeft;
  }
  return CostFuncType::kConstant;
}

double FittedCostFunction::Eval(double x, double xl, double xr) const {
  switch (type) {
    case CostFuncType::kConstant:
      return b[0];
    case CostFuncType::kLinearOutput:
      return b[0] * x + b[1];
    case CostFuncType::kLinearLeft:
      return b[0] * xl + b[1];
    case CostFuncType::kQuadraticLeft:
      return b[0] * xl * xl + b[1] * xl + b[2];
    case CostFuncType::kLinearBoth:
      return b[0] * xl + b[1] * xr + b[2];
    case CostFuncType::kBilinear:
      return b[0] * xl * xr + b[1] * xl + b[2] * xr + b[3];
  }
  return 0.0;
}

Gaussian FittedCostFunction::Distribution(const Gaussian& x, const Gaussian& xl,
                                          const Gaussian& xr) const {
  switch (type) {
    case CostFuncType::kConstant:
      return Gaussian(b[0], 0.0);
    case CostFuncType::kLinearOutput:
      return Gaussian(b[0] * x.mean + b[1], b[0] * b[0] * x.variance);
    case CostFuncType::kLinearLeft:
      return Gaussian(b[0] * xl.mean + b[1], b[0] * b[0] * xl.variance);
    case CostFuncType::kQuadraticLeft: {
      const double mean =
          b[0] * NormalMoment(xl.mean, xl.variance, 2) + b[1] * xl.mean + b[2];
      return Gaussian(mean, QuadraticFormVariance(b[0], b[1], xl.mean, xl.variance));
    }
    case CostFuncType::kLinearBoth:
      return Gaussian(b[0] * xl.mean + b[1] * xr.mean + b[2],
                      b[0] * b[0] * xl.variance + b[1] * b[1] * xr.variance);
    case CostFuncType::kBilinear: {
      const double mean =
          b[0] * xl.mean * xr.mean + b[1] * xl.mean + b[2] * xr.mean + b[3];
      return Gaussian(mean, BilinearFormVariance(b[0], b[1], b[2], xl.mean,
                                                 xl.variance, xr.mean,
                                                 xr.variance));
    }
  }
  return Gaussian();
}

std::string FittedCostFunction::ToString() const {
  std::string out = CostFuncTypeName(type);
  out += "[";
  char buf[32];
  for (size_t i = 0; i < b.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.4g", b[i]);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace uqp
