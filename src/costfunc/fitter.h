#pragma once

#include <vector>

#include "common/status.h"
#include "cost/units.h"
#include "costfunc/types.h"
#include "engine/cost_model.h"
#include "engine/plan.h"
#include "sampling/estimator.h"
#include "storage/database.h"

namespace uqp {

/// Fitted logical cost functions for one operator: one function per cost
/// unit, plus the selectivity variables (node ids owning them) that the
/// functions reference.
struct OperatorCostFunctions {
  int node_id = -1;
  OpType op_type = OpType::kSeqScan;
  FittedCostFunction funcs[kNumCostUnits];
  /// Owning node ids of the selectivity variables; -1 when unused (e.g.
  /// var_left on a leaf).
  int var_own = -1;
  int var_left = -1;
  int var_right = -1;
};

/// Grid/fit configuration (paper §4.2).
struct FitOptions {
  /// W: subintervals of the 3σ interval for 1-D shapes (W+1 points).
  int grid_1d = 6;
  /// W per axis for 2-D shapes ((W+1)² points).
  int grid_2d = 4;
  EngineConfig engine;
};

/// Fits the logical cost functions of every operator in a plan by probing
/// the optimizer's cost model on a grid of selectivity points centered on
/// the estimated distributions (μ ± 3σ, clamped to [0, 1]) and solving the
/// nonnegativity-constrained least-squares problem of §4.2.
class CostFunctionFitter {
 public:
  CostFunctionFitter(const Database* db, FitOptions options = FitOptions())
      : db_(db), options_(options) {}

  StatusOr<std::vector<OperatorCostFunctions>> FitPlan(
      const Plan& plan, const PlanEstimates& estimates) const;

  /// Fits a single operator (exposed for tests and ablations).
  StatusOr<OperatorCostFunctions> FitNode(const PlanNode& node,
                                          const PlanEstimates& estimates) const;

 private:
  const Database* db_;
  FitOptions options_;
};

}  // namespace uqp
