#pragma once

#include <string>
#include <vector>

#include "engine/plan.h"
#include "math/gaussian.h"

namespace uqp {

/// The six logical cost function shapes of paper §4.1, in selectivity form
/// (C1'–C6'). X is the operator's own selectivity, Xl / Xr the selectivity
/// variables of its left / right child subtree.
enum class CostFuncType {
  kConstant,       ///< C1': f = b0
  kLinearOutput,   ///< C2': f = b0 X + b1
  kLinearLeft,     ///< C3': f = b0 Xl + b1
  kQuadraticLeft,  ///< C4': f = b0 Xl² + b1 Xl + b2
  kLinearBoth,     ///< C5': f = b0 Xl + b1 Xr + b2
  kBilinear,       ///< C6': f = b0 Xl Xr + b1 Xl + b2 Xr + b3
};

const char* CostFuncTypeName(CostFuncType t);

/// Number of coefficients of each shape.
int CostFuncNumCoefficients(CostFuncType t);

/// The static (operator type, cost unit) -> shape mapping (§4.1's analysis
/// of representative operators). Cost units indexed as in cost/units.h
/// (0..4 = ns, nr, nt, ni, no).
CostFuncType CostFunctionTypeFor(OpType op, int cost_unit);

/// A fitted logical cost function for one (operator, cost unit).
struct FittedCostFunction {
  CostFuncType type = CostFuncType::kConstant;
  std::vector<double> b;

  /// Point evaluation.
  double Eval(double x, double xl, double xr) const;

  /// The asymptotic-normal approximation fN ~ N(E[f], Var[f]) of §5.2.1,
  /// given the (independent) Gaussian selectivities. Quadratic and
  /// bilinear shapes use Lemma 4 / Lemma 8.
  Gaussian Distribution(const Gaussian& x, const Gaussian& xl,
                        const Gaussian& xr) const;

  std::string ToString() const;
};

}  // namespace uqp
