#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/plan.h"
#include "math/rng.h"
#include "storage/database.h"

namespace uqp {

/// One benchmark query: a name plus the logical plan tree (scans as
/// SeqScan, joins as HashJoin) to be handed to OptimizePlan.
struct WorkloadQuery {
  std::string name;
  std::unique_ptr<PlanNode> logical;
};

/// Picks predicate constants from catalog statistics, so generated queries
/// land at chosen points of the selectivity space (the Picasso-style
/// generation of paper §6.2).
class ConstantPicker {
 public:
  ConstantPicker(const Database* db, Rng* rng) : db_(db), rng_(rng) {}

  /// Column index of `column` in `table`'s schema (checked).
  int ColIdx(const std::string& table, const std::string& column) const;

  /// Numeric value v such that P(col <= v) ~ fraction.
  Value NumericAtFraction(const std::string& table, const std::string& column,
                          double fraction) const;

  /// Uniformly random point of the column's value range.
  Value RandomNumeric(const std::string& table, const std::string& column);

  /// Random distinct string value of the column (uniform over distinct).
  std::string RandomString(const std::string& table, const std::string& column);

  /// `col <= v` predicate hitting the target selectivity.
  ExprPtr LessEqAtFraction(const std::string& table, const std::string& column,
                           double fraction) const;

  /// `lo <= col <= hi` covering roughly `width` of the value distribution,
  /// starting at a random offset.
  ExprPtr RangeOfWidth(const std::string& table, const std::string& column,
                       double width);

  /// Log-uniform draw from [lo, hi] — used to spread query instances
  /// across orders of magnitude of selectivity, as the paper's benchmark
  /// instances span sub-second to thousands of seconds.
  double LogUniform(double lo, double hi);

  Rng* rng() { return rng_; }

 private:
  const Database* db_;
  Rng* rng_;
};

/// Builds left-deep join chains while tracking the provenance of output
/// columns, so join keys, residuals, group-by and sort columns can be
/// written with qualified "table.column" names.
class JoinChainBuilder {
 public:
  explicit JoinChainBuilder(const Database* db) : db_(db) {}

  /// Sets the base (probe-side) relation.
  JoinChainBuilder& Start(const std::string& table, ExprPtr predicate = nullptr);

  /// Joins `table` (build side) with equi-keys given as
  /// (existing "table.column", new table's column name) pairs.
  JoinChainBuilder& Join(const std::string& table, ExprPtr predicate,
                         std::vector<std::pair<std::string, std::string>> keys);

  /// Output column index of the first occurrence of "table.column".
  int Col(const std::string& qualified) const;

  std::unique_ptr<PlanNode> Finish() { return std::move(root_); }

 private:
  const Database* db_;
  std::unique_ptr<PlanNode> root_;
  std::vector<std::pair<std::string, std::string>> columns_;  // (table, col)
};

/// All workload options in one place.
struct MicroOptions {
  int selection_queries = 60;
  int join_queries = 49;  ///< laid out on a near-square 2-D selectivity grid
  uint64_t seed = 7;
};

struct SelJoinOptions {
  int instances_per_template = 6;
  uint64_t seed = 11;
};

struct TpchWorkloadOptions {
  int instances_per_template = 3;
  uint64_t seed = 13;
};

std::vector<WorkloadQuery> MakeMicroWorkload(const Database& db,
                                             const MicroOptions& options);
std::vector<WorkloadQuery> MakeSelJoinWorkload(const Database& db,
                                               const SelJoinOptions& options);
std::vector<WorkloadQuery> MakeTpchWorkload(const Database& db,
                                            const TpchWorkloadOptions& options);

/// Dispatch by benchmark name: "micro", "seljoin", "tpch".
std::vector<WorkloadQuery> MakeWorkload(const Database& db,
                                        const std::string& kind, uint64_t seed,
                                        int size_hint);

}  // namespace uqp
