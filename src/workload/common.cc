#include "workload/common.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace uqp {

int ConstantPicker::ColIdx(const std::string& table,
                           const std::string& column) const {
  const int idx = db_->GetTable(table).schema().IndexOf(column);
  UQP_CHECK(idx >= 0) << "unknown column " << table << "." << column;
  return idx;
}

Value ConstantPicker::NumericAtFraction(const std::string& table,
                                        const std::string& column,
                                        double fraction) const {
  const TableStats& stats = db_->catalog().Get(table);
  const ColumnStats& cs = stats.columns[static_cast<size_t>(ColIdx(table, column))];
  UQP_CHECK(cs.numeric) << table << "." << column << " is not numeric";
  return Value::Double(cs.histogram.ValueAtFraction(fraction));
}

Value ConstantPicker::RandomNumeric(const std::string& table,
                                    const std::string& column) {
  return NumericAtFraction(table, column, rng_->NextDouble());
}

std::string ConstantPicker::RandomString(const std::string& table,
                                         const std::string& column) {
  const TableStats& stats = db_->catalog().Get(table);
  const ColumnStats& cs = stats.columns[static_cast<size_t>(ColIdx(table, column))];
  UQP_CHECK(!cs.numeric) << table << "." << column << " is not a string column";
  UQP_CHECK(!cs.string_freq.empty());
  // Deterministic pick: sort ids, then index uniformly.
  std::vector<int32_t> ids;
  ids.reserve(cs.string_freq.size());
  for (const auto& [id, _] : cs.string_freq) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  const int32_t id = ids[rng_->NextBelow(ids.size())];
  return StringPool::Global().Lookup(id);
}

ExprPtr ConstantPicker::LessEqAtFraction(const std::string& table,
                                         const std::string& column,
                                         double fraction) const {
  return Expr::Cmp(ColIdx(table, column), CmpOp::kLe,
                   NumericAtFraction(table, column, fraction));
}

ExprPtr ConstantPicker::RangeOfWidth(const std::string& table,
                                     const std::string& column, double width) {
  width = std::clamp(width, 0.0, 1.0);
  const double start = rng_->NextDouble() * (1.0 - width);
  const Value lo = NumericAtFraction(table, column, start);
  const Value hi = NumericAtFraction(table, column, start + width);
  return Expr::Between(ColIdx(table, column), lo, hi);
}

double ConstantPicker::LogUniform(double lo, double hi) {
  UQP_CHECK(lo > 0.0 && hi >= lo);
  const double u = rng_->NextDouble();
  return lo * std::pow(hi / lo, u);
}

JoinChainBuilder& JoinChainBuilder::Start(const std::string& table,
                                          ExprPtr predicate) {
  root_ = MakeSeqScan(table, std::move(predicate));
  columns_.clear();
  const Schema& schema = db_->GetTable(table).schema();
  for (int i = 0; i < schema.num_columns(); ++i) {
    columns_.emplace_back(table, schema.column(i).name);
  }
  return *this;
}

JoinChainBuilder& JoinChainBuilder::Join(
    const std::string& table, ExprPtr predicate,
    std::vector<std::pair<std::string, std::string>> keys) {
  UQP_CHECK(root_ != nullptr) << "Join before Start";
  const Schema& schema = db_->GetTable(table).schema();
  std::vector<std::pair<int, int>> key_idx;
  for (const auto& [existing, fresh] : keys) {
    const int left = Col(existing);
    const int right = schema.IndexOf(fresh);
    UQP_CHECK(right >= 0) << "unknown column " << table << "." << fresh;
    key_idx.emplace_back(left, right);
  }
  root_ = MakeHashJoin(std::move(root_), MakeSeqScan(table, std::move(predicate)),
                       std::move(key_idx));
  for (int i = 0; i < schema.num_columns(); ++i) {
    columns_.emplace_back(table, schema.column(i).name);
  }
  return *this;
}

int JoinChainBuilder::Col(const std::string& qualified) const {
  const size_t dot = qualified.find('.');
  UQP_CHECK(dot != std::string::npos) << "expected table.column: " << qualified;
  const std::string table = qualified.substr(0, dot);
  const std::string column = qualified.substr(dot + 1);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].first == table && columns_[i].second == column) {
      return static_cast<int>(i);
    }
  }
  UQP_CHECK(false) << "column not in chain: " << qualified;
  return -1;
}

std::vector<WorkloadQuery> MakeWorkload(const Database& db,
                                        const std::string& kind, uint64_t seed,
                                        int size_hint) {
  if (kind == "micro") {
    MicroOptions options;
    options.seed = seed;
    if (size_hint > 0) {
      options.selection_queries = size_hint / 2;
      options.join_queries = size_hint - options.selection_queries;
    }
    return MakeMicroWorkload(db, options);
  }
  if (kind == "seljoin") {
    SelJoinOptions options;
    options.seed = seed;
    if (size_hint > 0) {
      options.instances_per_template = std::max(1, size_hint / 8);
    }
    return MakeSelJoinWorkload(db, options);
  }
  if (kind == "tpch") {
    TpchWorkloadOptions options;
    options.seed = seed;
    if (size_hint > 0) {
      options.instances_per_template = std::max(1, size_hint / 14);
    }
    return MakeTpchWorkload(db, options);
  }
  UQP_CHECK(false) << "unknown workload kind: " << kind;
  return {};
}

}  // namespace uqp
