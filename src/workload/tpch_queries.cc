#include "common/logging.h"
#include "workload/common.h"

namespace uqp {

namespace {

AggSpec Sum(int column, const char* name) {
  AggSpec s;
  s.kind = AggSpec::Kind::kSum;
  s.column = column;
  s.name = name;
  return s;
}

AggSpec Count(const char* name) {
  AggSpec s;
  s.kind = AggSpec::Kind::kCount;
  s.column = -1;
  s.name = name;
  return s;
}

AggSpec Avg(int column, const char* name) {
  AggSpec s;
  s.kind = AggSpec::Kind::kAvg;
  s.column = column;
  s.name = name;
  return s;
}

using TemplateFn = std::unique_ptr<PlanNode> (*)(const Database&,
                                                 ConstantPicker&);

// Q1: pricing summary report.
std::unique_ptr<PlanNode> Q1(const Database& db, ConstantPicker& pick) {
  (void)db;
  const double frac = 0.3 + 0.69 * pick.rng()->NextDouble();
  auto scan = MakeSeqScan(
      "lineitem", pick.LessEqAtFraction("lineitem", "l_shipdate", frac));
  const int rf = pick.ColIdx("lineitem", "l_returnflag");
  const int ls = pick.ColIdx("lineitem", "l_linestatus");
  const int qty = pick.ColIdx("lineitem", "l_quantity");
  const int price = pick.ColIdx("lineitem", "l_extendedprice");
  const int disc = pick.ColIdx("lineitem", "l_discount");
  auto agg = MakeAggregate(std::move(scan), {rf, ls},
                           {Sum(qty, "sum_qty"), Sum(price, "sum_price"),
                            Avg(disc, "avg_disc"), Count("count_order")});
  return MakeSort(std::move(agg), {0, 1});
}

// Q3: shipping priority.
std::unique_ptr<PlanNode> Q3(const Database& db, ConstantPicker& pick) {
  const double d = 0.2 + 0.75 * pick.rng()->NextDouble();
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             Expr::Cmp(pick.ColIdx("lineitem", "l_shipdate"), CmpOp::kGt,
                       pick.NumericAtFraction("lineitem", "l_shipdate", d)))
      .Join("orders",
            Expr::Cmp(pick.ColIdx("orders", "o_orderdate"), CmpOp::kLt,
                      pick.NumericAtFraction("orders", "o_orderdate", d)),
            {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer",
            Expr::StrEq(pick.ColIdx("customer", "c_mktsegment"),
                        pick.RandomString("customer", "c_mktsegment")),
            {{"orders.o_custkey", "c_custkey"}});
  const int okey = chain.Col("lineitem.l_orderkey");
  const int odate = chain.Col("orders.o_orderdate");
  const int ship = chain.Col("orders.o_shippriority");
  const int price = chain.Col("lineitem.l_extendedprice");
  auto agg = MakeAggregate(chain.Finish(), {okey, odate, ship},
                           {Sum(price, "revenue")});
  return MakeSort(std::move(agg), {3, 1});
}

// Q4: order priority checking (late lineitems).
std::unique_ptr<PlanNode> Q4(const Database& db, ConstantPicker& pick) {
  const int commit = pick.ColIdx("lineitem", "l_commitdate");
  const int receipt = pick.ColIdx("lineitem", "l_receiptdate");
  JoinChainBuilder chain(&db);
  chain.Start("orders", pick.RangeOfWidth("orders", "o_orderdate",
                                          pick.LogUniform(0.01, 0.3)))
      .Join("lineitem", Expr::CmpColumns(commit, CmpOp::kLt, receipt),
            {{"orders.o_orderkey", "l_orderkey"}});
  const int prio = chain.Col("orders.o_orderpriority");
  auto agg = MakeAggregate(chain.Finish(), {prio}, {Count("order_count")});
  return MakeSort(std::move(agg), {0});
}

// Q5: local supplier volume.
std::unique_ptr<PlanNode> Q5(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             pick.LessEqAtFraction("lineitem", "l_shipdate",
                                   pick.LogUniform(0.02, 1.0)))
      .Join("orders",
            pick.RangeOfWidth("orders", "o_orderdate",
                              pick.LogUniform(0.01, 0.5)),
            {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}})
      .Join("supplier", nullptr,
            {{"lineitem.l_suppkey", "s_suppkey"},
             {"customer.c_nationkey", "s_nationkey"}})
      .Join("nation", nullptr, {{"supplier.s_nationkey", "n_nationkey"}})
      .Join("region",
            Expr::StrEq(pick.ColIdx("region", "r_name"),
                        pick.RandomString("region", "r_name")),
            {{"nation.n_regionkey", "r_regionkey"}});
  const int nname = chain.Col("nation.n_name");
  const int price = chain.Col("lineitem.l_extendedprice");
  auto agg = MakeAggregate(chain.Finish(), {nname}, {Sum(price, "revenue")});
  return MakeSort(std::move(agg), {1});
}

// Q6: forecasting revenue change (pure selection + aggregate).
std::unique_ptr<PlanNode> Q6(const Database& db, ConstantPicker& pick) {
  (void)db;
  ExprPtr pred = Expr::And(
      pick.RangeOfWidth("lineitem", "l_shipdate", pick.LogUniform(0.01, 0.4)),
      Expr::And(pick.RangeOfWidth("lineitem", "l_discount", 0.25),
                Expr::Cmp(pick.ColIdx("lineitem", "l_quantity"), CmpOp::kLt,
                          pick.NumericAtFraction("lineitem", "l_quantity",
                                                 0.4 + 0.2 * pick.rng()->NextDouble()))));
  auto scan = MakeSeqScan("lineitem", std::move(pred));
  const int price = pick.ColIdx("lineitem", "l_extendedprice");
  return MakeAggregate(std::move(scan), {}, {Sum(price, "revenue")});
}

// Q7: volume shipping between two nations.
std::unique_ptr<PlanNode> Q7(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain.Start("lineitem", pick.RangeOfWidth("lineitem", "l_shipdate",
                                           pick.LogUniform(0.02, 0.7)))
      .Join("supplier", nullptr, {{"lineitem.l_suppkey", "s_suppkey"}})
      .Join("nation",
            Expr::StrEq(pick.ColIdx("nation", "n_name"),
                        pick.RandomString("nation", "n_name")),
            {{"supplier.s_nationkey", "n_nationkey"}})
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}});
  const int nname = chain.Col("nation.n_name");
  const int cnat = chain.Col("customer.c_nationkey");
  const int price = chain.Col("lineitem.l_extendedprice");
  auto agg =
      MakeAggregate(chain.Finish(), {nname, cnat}, {Sum(price, "revenue")});
  return MakeSort(std::move(agg), {0, 1});
}

// Q8: national market share.
std::unique_ptr<PlanNode> Q8(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             pick.LessEqAtFraction("lineitem", "l_shipdate",
                                   pick.LogUniform(0.02, 1.0)))
      .Join("part",
            Expr::StrEq(pick.ColIdx("part", "p_type"),
                        pick.RandomString("part", "p_type")),
            {{"lineitem.l_partkey", "p_partkey"}})
      .Join("orders",
            pick.RangeOfWidth("orders", "o_orderdate",
                              pick.LogUniform(0.01, 0.6)),
            {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}})
      .Join("nation", nullptr, {{"customer.c_nationkey", "n_nationkey"}})
      .Join("region",
            Expr::StrEq(pick.ColIdx("region", "r_name"),
                        pick.RandomString("region", "r_name")),
            {{"nation.n_regionkey", "r_regionkey"}});
  const int odate = chain.Col("orders.o_orderdate");
  const int price = chain.Col("lineitem.l_extendedprice");
  auto agg = MakeAggregate(chain.Finish(), {odate}, {Sum(price, "volume")});
  return MakeSort(std::move(agg), {0});
}

// Q9: product type profit measure.
std::unique_ptr<PlanNode> Q9(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             pick.LessEqAtFraction("lineitem", "l_shipdate",
                                   pick.LogUniform(0.02, 1.0)))
      .Join("part",
            Expr::StrEq(pick.ColIdx("part", "p_brand"),
                        pick.RandomString("part", "p_brand")),
            {{"lineitem.l_partkey", "p_partkey"}})
      .Join("supplier", nullptr, {{"lineitem.l_suppkey", "s_suppkey"}})
      .Join("partsupp", nullptr,
            {{"lineitem.l_partkey", "ps_partkey"},
             {"lineitem.l_suppkey", "ps_suppkey"}})
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("nation", nullptr, {{"supplier.s_nationkey", "n_nationkey"}});
  const int nname = chain.Col("nation.n_name");
  const int price = chain.Col("lineitem.l_extendedprice");
  auto agg = MakeAggregate(chain.Finish(), {nname}, {Sum(price, "sum_profit")});
  return MakeSort(std::move(agg), {0});
}

// Q10: returned item reporting.
std::unique_ptr<PlanNode> Q10(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             Expr::StrEq(pick.ColIdx("lineitem", "l_returnflag"), "R"))
      .Join("orders",
            pick.RangeOfWidth("orders", "o_orderdate",
                              pick.LogUniform(0.01, 0.4)),
            {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}})
      .Join("nation", nullptr, {{"customer.c_nationkey", "n_nationkey"}});
  const int ckey = chain.Col("customer.c_custkey");
  const int nname = chain.Col("nation.n_name");
  const int price = chain.Col("lineitem.l_extendedprice");
  auto agg =
      MakeAggregate(chain.Finish(), {ckey, nname}, {Sum(price, "revenue")});
  return MakeSort(std::move(agg), {2});
}

// Q12: shipping modes and order priority.
std::unique_ptr<PlanNode> Q12(const Database& db, ConstantPicker& pick) {
  const int commit = pick.ColIdx("lineitem", "l_commitdate");
  const int receipt = pick.ColIdx("lineitem", "l_receiptdate");
  ExprPtr pred = Expr::And(
      Expr::StrEq(pick.ColIdx("lineitem", "l_shipmode"),
                  pick.RandomString("lineitem", "l_shipmode")),
      Expr::And(Expr::CmpColumns(commit, CmpOp::kLt, receipt),
                pick.RangeOfWidth("lineitem", "l_receiptdate",
                                  pick.LogUniform(0.01, 0.5))));
  JoinChainBuilder chain(&db);
  chain.Start("lineitem", std::move(pred))
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}});
  const int mode = chain.Col("lineitem.l_shipmode");
  auto agg = MakeAggregate(chain.Finish(), {mode}, {Count("line_count")});
  return MakeSort(std::move(agg), {0});
}

// Q13: customer order-count distribution (aggregate over aggregate).
std::unique_ptr<PlanNode> Q13(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain.Start("orders",
              Expr::Cmp(pick.ColIdx("orders", "o_orderpriority"), CmpOp::kNe,
                        Value::String(pick.RandomString("orders",
                                                        "o_orderpriority"))))
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}});
  const int ckey = chain.Col("customer.c_custkey");
  auto per_customer =
      MakeAggregate(chain.Finish(), {ckey}, {Count("c_count")});
  // Distribution over the per-customer counts: group by the count column.
  auto dist = MakeAggregate(std::move(per_customer), {1}, {Count("custdist")});
  return MakeSort(std::move(dist), {0});
}

// Q14: promotion effect.
std::unique_ptr<PlanNode> Q14(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             pick.RangeOfWidth("lineitem", "l_shipdate",
                               pick.LogUniform(0.01, 0.3)))
      .Join("part", nullptr, {{"lineitem.l_partkey", "p_partkey"}});
  const int price = chain.Col("lineitem.l_extendedprice");
  return MakeAggregate(chain.Finish(), {}, {Sum(price, "promo_revenue")});
}

// Q18: large volume customers.
std::unique_ptr<PlanNode> Q18(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             Expr::Cmp(pick.ColIdx("lineitem", "l_quantity"), CmpOp::kGt,
                       pick.NumericAtFraction(
                           "lineitem", "l_quantity",
                           0.8 * pick.rng()->NextDouble())))
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}});
  const int okey = chain.Col("orders.o_orderkey");
  const int ckey = chain.Col("customer.c_custkey");
  const int qty = chain.Col("lineitem.l_quantity");
  auto agg =
      MakeAggregate(chain.Finish(), {okey, ckey}, {Sum(qty, "sum_qty")});
  return MakeSort(std::move(agg), {2});
}

// Q19: discounted revenue.
std::unique_ptr<PlanNode> Q19(const Database& db, ConstantPicker& pick) {
  const double qwidth = pick.LogUniform(0.1, 0.7);
  const double qlo = pick.rng()->NextDouble() * (1.0 - qwidth);
  ExprPtr lpred = Expr::And(
      Expr::Between(pick.ColIdx("lineitem", "l_quantity"),
                    pick.NumericAtFraction("lineitem", "l_quantity", qlo),
                    pick.NumericAtFraction("lineitem", "l_quantity", qlo + qwidth)),
      Expr::StrEq(pick.ColIdx("lineitem", "l_shipinstruct"),
                  "DELIVER IN PERSON"));
  ExprPtr ppred = Expr::And(
      Expr::StrEq(pick.ColIdx("part", "p_brand"),
                  pick.RandomString("part", "p_brand")),
      pick.RangeOfWidth("part", "p_size", 0.5));
  JoinChainBuilder chain(&db);
  chain.Start("lineitem", std::move(lpred))
      .Join("part", std::move(ppred), {{"lineitem.l_partkey", "p_partkey"}});
  const int price = chain.Col("lineitem.l_extendedprice");
  return MakeAggregate(chain.Finish(), {}, {Sum(price, "revenue")});
}

struct NamedTemplate {
  const char* name;
  TemplateFn fn;
};

// The 14 templates the paper uses: 1,3,4,5,6,7,8,9,10,12,13,14,18,19.
const NamedTemplate kTemplates[] = {
    {"q1", Q1},   {"q3", Q3},   {"q4", Q4},   {"q5", Q5},  {"q6", Q6},
    {"q7", Q7},   {"q8", Q8},   {"q9", Q9},   {"q10", Q10},{"q12", Q12},
    {"q13", Q13}, {"q14", Q14}, {"q18", Q18}, {"q19", Q19},
};

}  // namespace

std::vector<WorkloadQuery> MakeTpchWorkload(const Database& db,
                                            const TpchWorkloadOptions& options) {
  Rng rng(options.seed);
  ConstantPicker pick(&db, &rng);
  std::vector<WorkloadQuery> out;
  for (int i = 0; i < options.instances_per_template; ++i) {
    for (const NamedTemplate& t : kTemplates) {
      WorkloadQuery q;
      q.name = "tpch_" + std::string(t.name) + "_" + std::to_string(i);
      q.logical = t.fn(db, pick);
      out.push_back(std::move(q));
    }
  }
  return out;
}

}  // namespace uqp
