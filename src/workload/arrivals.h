#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace uqp {

/// Seeded open-loop arrival traces shared by the throughput bench and the
/// scheduling simulator (promoted out of bench_service_throughput so both
/// draw byte-identical schedules from the same seed).
///
/// Traces:
///   "uniform"  — fixed gap 1/rate_qps
///   "poisson"  — exponential gaps at rate_qps
///   "randwalk" — rate modulated by a clamped multiplicative random walk,
///                modelling slow load swings (gap = 1 / (rate * mult))
///
/// Returns n absolute arrival times in seconds, strictly increasing.
std::vector<double> MakeArrivalSeconds(const std::string& trace,
                                       double rate_qps, size_t n,
                                       uint64_t seed);

/// Per-arrival plan choice over a pool of `pool_size` plans.
///
/// Mixes:
///   "roundrobin" — arrival i runs plan i % pool_size (the bench's mixed
///                  storm shape)
///   "zipf"       — zipf(z)-skewed recurring-query mix: a few plans carry
///                  most of the traffic, the tail is cold (the cache- and
///                  feedback-relevant shape for scheduling scenarios)
///
/// Returns n indices in [0, pool_size). Deterministic in (mix, z, seed).
std::vector<size_t> MakePlanIndices(const std::string& mix, size_t pool_size,
                                    size_t n, double zipf_z, uint64_t seed);

}  // namespace uqp
