#include <cmath>

#include "common/logging.h"
#include "workload/common.h"

namespace uqp {

namespace {

struct SelTarget {
  const char* table;
  const char* column;
};

// Numeric columns spread over the larger TPC-H relations.
const SelTarget kSelectionTargets[] = {
    {"lineitem", "l_shipdate"},   {"lineitem", "l_extendedprice"},
    {"orders", "o_orderdate"},    {"orders", "o_totalprice"},
    {"customer", "c_acctbal"},    {"part", "p_retailprice"},
    {"partsupp", "ps_supplycost"},{"lineitem", "l_quantity"},
};

struct JoinTarget {
  const char* left_table;
  const char* left_filter;
  const char* right_table;
  const char* right_filter;
  const char* left_key;
  const char* right_key;
};

// Two-way equi-joins; the build (right) side is the smaller relation.
const JoinTarget kJoinTargets[] = {
    {"lineitem", "l_shipdate", "orders", "o_orderdate", "l_orderkey",
     "o_orderkey"},
    {"orders", "o_totalprice", "customer", "c_acctbal", "o_custkey",
     "c_custkey"},
    {"lineitem", "l_quantity", "part", "p_retailprice", "l_partkey",
     "p_partkey"},
    {"lineitem", "l_extendedprice", "supplier", "s_acctbal", "l_suppkey",
     "s_suppkey"},
    {"partsupp", "ps_supplycost", "part", "p_retailprice", "ps_partkey",
     "p_partkey"},
};

}  // namespace

std::vector<WorkloadQuery> MakeMicroWorkload(const Database& db,
                                             const MicroOptions& options) {
  Rng rng(options.seed);
  ConstantPicker pick(&db, &rng);
  std::vector<WorkloadQuery> out;

  // --- Selections: selectivities evenly across (0, 1) (Picasso-style). ---
  const int nsel = options.selection_queries;
  const int ntargets = static_cast<int>(std::size(kSelectionTargets));
  for (int i = 0; i < nsel; ++i) {
    const SelTarget& target = kSelectionTargets[i % ntargets];
    const double fraction = (static_cast<double>(i) + 0.5) / nsel;
    WorkloadQuery q;
    q.name = "micro_sel_" + std::string(target.table) + "_" + std::to_string(i);
    q.logical = MakeSeqScan(
        target.table, pick.LessEqAtFraction(target.table, target.column, fraction));
    out.push_back(std::move(q));
  }

  // --- Two-way joins: an evenly spaced 2-D selectivity grid per pair. ---
  const int npairs = static_cast<int>(std::size(kJoinTargets));
  const int per_pair = std::max(1, options.join_queries / npairs);
  const int grid = std::max(1, static_cast<int>(std::round(std::sqrt(per_pair))));
  int join_count = 0;
  for (int p = 0; p < npairs && join_count < options.join_queries; ++p) {
    const JoinTarget& target = kJoinTargets[p];
    for (int a = 0; a < grid && join_count < options.join_queries; ++a) {
      for (int b = 0; b < grid && join_count < options.join_queries; ++b) {
        const double fl = (static_cast<double>(a) + 0.5) / grid;
        const double fr = (static_cast<double>(b) + 0.5) / grid;
        WorkloadQuery q;
        q.name = "micro_join_" + std::string(target.left_table) + "_" +
                 target.right_table + "_" + std::to_string(join_count);
        JoinChainBuilder chain(&db);
        chain.Start(target.left_table,
                    pick.LessEqAtFraction(target.left_table, target.left_filter, fl))
            .Join(target.right_table,
                  pick.LessEqAtFraction(target.right_table, target.right_filter, fr),
                  {{std::string(target.left_table) + "." + target.left_key,
                    target.right_key}});
        q.logical = chain.Finish();
        out.push_back(std::move(q));
        ++join_count;
      }
    }
  }
  return out;
}

}  // namespace uqp
