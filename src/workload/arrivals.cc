#include "workload/arrivals.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "math/rng.h"
#include "math/zipf.h"

namespace uqp {

std::vector<double> MakeArrivalSeconds(const std::string& trace,
                                       double rate_qps, size_t n,
                                       uint64_t seed) {
  UQP_CHECK(rate_qps > 0.0) << "arrival rate must be positive";
  std::vector<double> at(n);
  Rng rng(seed);
  double t = 0.0;
  double mult = 1.0;
  for (size_t i = 0; i < n; ++i) {
    double gap;
    if (trace == "uniform") {
      gap = 1.0 / rate_qps;
    } else if (trace == "poisson") {
      gap = rng.NextExponential(rate_qps);
    } else {  // randwalk
      mult = std::clamp(mult * std::exp(0.5 * (rng.NextDouble() - 0.5)), 0.25,
                        4.0);
      gap = 1.0 / (rate_qps * mult);
    }
    t += gap;
    at[i] = t;
  }
  return at;
}

std::vector<size_t> MakePlanIndices(const std::string& mix, size_t pool_size,
                                    size_t n, double zipf_z, uint64_t seed) {
  UQP_CHECK(pool_size > 0) << "plan pool must be non-empty";
  std::vector<size_t> idx(n);
  if (mix == "roundrobin") {
    for (size_t i = 0; i < n; ++i) idx[i] = i % pool_size;
    return idx;
  }
  UQP_CHECK(mix == "zipf") << "unknown plan mix: " << mix;
  ZipfDistribution zipf(pool_size, zipf_z);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<size_t>(zipf.Sample(&rng));
  }
  return idx;
}

}  // namespace uqp
