#include "common/logging.h"
#include "workload/common.h"

namespace uqp {

namespace {

/// One SELJOIN template: the "maximal aggregate-free subquery" of a TPC-H
/// template (paper §6.2), with randomized predicate constants.
using TemplateFn = std::unique_ptr<PlanNode> (*)(const Database&,
                                                 ConstantPicker&);

std::unique_ptr<PlanNode> SJ3(const Database& db, ConstantPicker& pick) {
  const double d = 0.2 + 0.75 * pick.rng()->NextDouble();
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             Expr::Cmp(pick.ColIdx("lineitem", "l_shipdate"), CmpOp::kGt,
                       pick.NumericAtFraction("lineitem", "l_shipdate", d)))
      .Join("orders",
            Expr::Cmp(pick.ColIdx("orders", "o_orderdate"), CmpOp::kLt,
                      pick.NumericAtFraction("orders", "o_orderdate", d)),
            {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer",
            Expr::StrEq(pick.ColIdx("customer", "c_mktsegment"),
                        pick.RandomString("customer", "c_mktsegment")),
            {{"orders.o_custkey", "c_custkey"}});
  return chain.Finish();
}

std::unique_ptr<PlanNode> SJ5(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             pick.LessEqAtFraction("lineitem", "l_shipdate",
                                   pick.LogUniform(0.02, 1.0)))
      .Join("orders",
            pick.RangeOfWidth("orders", "o_orderdate",
                              pick.LogUniform(0.01, 0.5)),
            {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}})
      .Join("supplier", nullptr,
            {{"lineitem.l_suppkey", "s_suppkey"},
             {"customer.c_nationkey", "s_nationkey"}})
      .Join("nation", nullptr, {{"supplier.s_nationkey", "n_nationkey"}})
      .Join("region",
            Expr::StrEq(pick.ColIdx("region", "r_name"),
                        pick.RandomString("region", "r_name")),
            {{"nation.n_regionkey", "r_regionkey"}});
  return chain.Finish();
}

std::unique_ptr<PlanNode> SJ7(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem", pick.RangeOfWidth("lineitem", "l_shipdate",
                                     pick.LogUniform(0.02, 0.7)))
      .Join("supplier", nullptr, {{"lineitem.l_suppkey", "s_suppkey"}})
      .Join("nation",
            Expr::StrEq(pick.ColIdx("nation", "n_name"),
                        pick.RandomString("nation", "n_name")),
            {{"supplier.s_nationkey", "n_nationkey"}})
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}});
  return chain.Finish();
}

std::unique_ptr<PlanNode> SJ8(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             pick.LessEqAtFraction("lineitem", "l_shipdate",
                                   pick.LogUniform(0.02, 1.0)))
      .Join("part",
            Expr::StrEq(pick.ColIdx("part", "p_type"),
                        pick.RandomString("part", "p_type")),
            {{"lineitem.l_partkey", "p_partkey"}})
      .Join("orders",
            pick.RangeOfWidth("orders", "o_orderdate",
                              pick.LogUniform(0.01, 0.6)),
            {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}})
      .Join("nation", nullptr, {{"customer.c_nationkey", "n_nationkey"}});
  return chain.Finish();
}

std::unique_ptr<PlanNode> SJ9(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             pick.LessEqAtFraction("lineitem", "l_shipdate",
                                   pick.LogUniform(0.02, 1.0)))
      .Join("part",
            Expr::StrEq(pick.ColIdx("part", "p_brand"),
                        pick.RandomString("part", "p_brand")),
            {{"lineitem.l_partkey", "p_partkey"}})
      .Join("supplier", nullptr, {{"lineitem.l_suppkey", "s_suppkey"}})
      .Join("partsupp", nullptr,
            {{"lineitem.l_partkey", "ps_partkey"},
             {"lineitem.l_suppkey", "ps_suppkey"}})
      .Join("nation", nullptr, {{"supplier.s_nationkey", "n_nationkey"}});
  return chain.Finish();
}

std::unique_ptr<PlanNode> SJ10(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             Expr::StrEq(pick.ColIdx("lineitem", "l_returnflag"), "R"))
      .Join("orders",
            pick.RangeOfWidth("orders", "o_orderdate",
                              pick.LogUniform(0.01, 0.4)),
            {{"lineitem.l_orderkey", "o_orderkey"}})
      .Join("customer", nullptr, {{"orders.o_custkey", "c_custkey"}})
      .Join("nation", nullptr, {{"customer.c_nationkey", "n_nationkey"}});
  return chain.Finish();
}

std::unique_ptr<PlanNode> SJ12(const Database& db, ConstantPicker& pick) {
  const int commit = pick.ColIdx("lineitem", "l_commitdate");
  const int receipt = pick.ColIdx("lineitem", "l_receiptdate");
  ExprPtr pred = Expr::And(
      Expr::StrEq(pick.ColIdx("lineitem", "l_shipmode"),
                  pick.RandomString("lineitem", "l_shipmode")),
      Expr::And(Expr::CmpColumns(commit, CmpOp::kLt, receipt),
                pick.RangeOfWidth("lineitem", "l_receiptdate",
                                  pick.LogUniform(0.01, 0.5))));
  JoinChainBuilder chain(&db);
  chain.Start("lineitem", std::move(pred))
      .Join("orders", nullptr, {{"lineitem.l_orderkey", "o_orderkey"}});
  return chain.Finish();
}

std::unique_ptr<PlanNode> SJ14(const Database& db, ConstantPicker& pick) {
  JoinChainBuilder chain(&db);
  chain
      .Start("lineitem",
             pick.RangeOfWidth("lineitem", "l_shipdate",
                               pick.LogUniform(0.01, 0.3)))
      .Join("part", nullptr, {{"lineitem.l_partkey", "p_partkey"}});
  return chain.Finish();
}

std::unique_ptr<PlanNode> SJ19(const Database& db, ConstantPicker& pick) {
  const double qwidth = pick.LogUniform(0.1, 0.7);
  const double qlo = pick.rng()->NextDouble() * (1.0 - qwidth);
  ExprPtr lpred = Expr::And(
      Expr::Between(pick.ColIdx("lineitem", "l_quantity"),
                    pick.NumericAtFraction("lineitem", "l_quantity", qlo),
                    pick.NumericAtFraction("lineitem", "l_quantity", qlo + qwidth)),
      Expr::StrEq(pick.ColIdx("lineitem", "l_shipinstruct"),
                  "DELIVER IN PERSON"));
  ExprPtr ppred = Expr::And(
      Expr::StrEq(pick.ColIdx("part", "p_brand"),
                  pick.RandomString("part", "p_brand")),
      pick.RangeOfWidth("part", "p_size", 0.5));
  JoinChainBuilder chain(&db);
  chain.Start("lineitem", std::move(lpred))
      .Join("part", std::move(ppred), {{"lineitem.l_partkey", "p_partkey"}});
  return chain.Finish();
}

struct NamedTemplate {
  const char* name;
  TemplateFn fn;
};

const NamedTemplate kTemplates[] = {
    {"sj3", SJ3},   {"sj5", SJ5},   {"sj7", SJ7},   {"sj8", SJ8},
    {"sj9", SJ9},   {"sj10", SJ10}, {"sj12", SJ12}, {"sj14", SJ14},
    {"sj19", SJ19},
};

}  // namespace

std::vector<WorkloadQuery> MakeSelJoinWorkload(const Database& db,
                                               const SelJoinOptions& options) {
  Rng rng(options.seed);
  ConstantPicker pick(&db, &rng);
  std::vector<WorkloadQuery> out;
  for (int i = 0; i < options.instances_per_template; ++i) {
    for (const NamedTemplate& t : kTemplates) {
      WorkloadQuery q;
      q.name = "seljoin_" + std::string(t.name) + "_" + std::to_string(i);
      q.logical = t.fn(db, pick);
      out.push_back(std::move(q));
    }
  }
  return out;
}

}  // namespace uqp
