#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace uqp {

/// Severity levels for the diagnostic logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarning
/// so that library code stays quiet in tests and benches.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log message that emits on destruction; kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below threshold.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace uqp

#define UQP_LOG(level)                                                   \
  (::uqp::LogLevel::k##level < ::uqp::GetLogLevel())                     \
      ? (void)0                                                          \
      : (void)(::uqp::internal::LogMessage(::uqp::LogLevel::k##level,    \
                                           __FILE__, __LINE__))

#define UQP_LOG_STREAM(level) \
  ::uqp::internal::LogMessage(::uqp::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check: always on (used for internal consistency, not user
/// input validation — user input goes through Status).
#define UQP_CHECK(cond)                                                  \
  while (!(cond))                                                        \
  ::uqp::internal::LogMessage(::uqp::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define UQP_DCHECK(cond) UQP_CHECK(cond)
