#pragma once

#include <string>
#include <utility>

namespace uqp {

/// Error codes for recoverable failures crossing library boundaries.
/// The library does not throw exceptions; fallible operations return a
/// Status (or StatusOr<T>) in the style of Arrow / RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Result of a fallible operation: either OK or a code plus a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad sampling ratio".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Minimal StatusOr in the Abseil mold.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace uqp

/// Propagate a non-OK Status to the caller.
#define UQP_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::uqp::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluate a StatusOr expression, binding the value or propagating the error.
#define UQP_ASSIGN_OR_RETURN(lhs, expr)          \
  UQP_ASSIGN_OR_RETURN_IMPL(                     \
      UQP_STATUS_CONCAT(_status_or_, __LINE__), lhs, expr)
#define UQP_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                              \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value()
#define UQP_STATUS_CONCAT_INNER(a, b) a##b
#define UQP_STATUS_CONCAT(a, b) UQP_STATUS_CONCAT_INNER(a, b)
