#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace uqp {

/// Annotated mutex: a std::mutex declared as a thread-safety-analysis
/// capability, so `clang++ -Wthread-safety` can prove that every field
/// marked UQP_GUARDED_BY(mu) is only touched while `mu` is held. Same
/// cost and semantics as std::mutex — the wrapper exists only because
/// libstdc++'s mutex types carry no annotations, which would leave the
/// analysis blind to every acquisition in the tree.
class UQP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() UQP_ACQUIRE() { mu_.lock(); }
  void Unlock() UQP_RELEASE() { mu_.unlock(); }
  bool TryLock() UQP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock guard for uqp::Mutex (the std::lock_guard shape clang's
/// analysis understands). This exact pattern — an ACQUIRE-annotated
/// constructor calling the mutex's own ACQUIRE method — is the canonical
/// scoped-capability idiom from the clang thread-safety docs.
class UQP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) UQP_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() UQP_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with uqp::Mutex. Wait requires the capability:
/// from the analysis's point of view the lock is held across the whole
/// call (the internal release-while-sleeping/reacquire is invisible, which
/// is sound — no guarded state is observable from the waiting thread in
/// between). Callers use explicit predicate loops,
///
///   MutexLock lock(&mu_);
///   while (!predicate_over_guarded_state) cv_.Wait(mu_);
///
/// rather than the std::condition_variable predicate-lambda overload: the
/// analysis treats a lambda body as a separate function and would not know
/// the lock is held inside it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) UQP_REQUIRES(mu) { WaitImpl(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // The one place the capability bookkeeping and reality diverge: the wait
  // must release the mutex while sleeping. Hidden from the analysis here —
  // inside common/, with this comment, per the repo's waiver policy — so
  // every *caller* still checks.
  void WaitImpl(Mutex& mu) UQP_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  std::condition_variable cv_;
};

}  // namespace uqp
