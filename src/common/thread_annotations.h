#pragma once

// Portable Clang thread-safety-analysis annotations.
//
// These macros attach the capability-based locking contracts of
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html to types, fields
// and functions, so the lock discipline of every concurrent structure in
// the tree (service cache shards, in-flight dedup tables, plan registry,
// feedback registry, worker pools) is *proved at compile time* by
// `clang++ -Wthread-safety` (CI's thread-safety job builds the whole tree
// with -Werror=thread-safety) instead of being rediscovered at runtime by
// a TSan test that happens to hit the race. Under any other compiler they
// expand to nothing, so the annotated tree still builds everywhere.
//
// libstdc++'s std::mutex / std::lock_guard carry no annotations, which
// would make the analysis blind to every acquisition — use the annotated
// wrappers in common/mutex.h (uqp::Mutex / MutexLock / CondVar) for any
// mutex that guards annotated state.

#if defined(__clang__)
#define UQP_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define UQP_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

/// Declares a type to be a capability (lockable). Example:
///   class UQP_CAPABILITY("mutex") Mutex { ... };
#define UQP_CAPABILITY(x) UQP_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type whose lifetime holds a capability (lock guards).
#define UQP_SCOPED_CAPABILITY UQP_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field annotation: reads and writes require holding the given capability.
#define UQP_GUARDED_BY(x) UQP_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer-field annotation: the *pointed-to* data is guarded.
#define UQP_PT_GUARDED_BY(x) UQP_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function annotation: the caller must hold the capability on entry (and
/// still holds it on exit). Capability expressions may name parameters and
/// their members, e.g. UQP_REQUIRES(shard.mu).
#define UQP_REQUIRES(...) \
  UQP_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the capability (deadlock
/// guard for functions that acquire it themselves).
#define UQP_EXCLUDES(...) \
  UQP_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function annotation: acquires the capability (held on return).
#define UQP_ACQUIRE(...) \
  UQP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the capability (no longer held on return).
#define UQP_RELEASE(...) \
  UQP_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the return value equals
/// the given boolean constant.
#define UQP_TRY_ACQUIRE(...) \
  UQP_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function annotation: asserts (at runtime, to the analysis) that the
/// capability is held without acquiring it.
#define UQP_ASSERT_CAPABILITY(x) \
  UQP_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function annotation: the returned reference is guarded by the capability.
#define UQP_RETURN_CAPABILITY(x) \
  UQP_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Keep out of
/// src/service and src/core (the tree carries zero waivers there — see
/// README "Static analysis & sanitizers"); every use elsewhere must carry
/// an inline comment explaining why the contract cannot be expressed.
#define UQP_NO_THREAD_SAFETY_ANALYSIS \
  UQP_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
