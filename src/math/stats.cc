#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "math/gaussian.h"

namespace uqp {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double PopulationVariance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  UQP_CHECK(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> FractionalRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    const double avg = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  UQP_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  return PearsonCorrelation(FractionalRanks(xs), FractionalRanks(ys));
}

void RunningStats::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  UQP_CHECK(xs.size() == ys.size());
  LinearFit fit;
  const size_t n = xs.size();
  if (n < 2) return fit;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx <= 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

ProximityResult ComputeProximity(const std::vector<double>& normalized_errors,
                                 int grid_size) {
  ProximityResult result;
  const double n = static_cast<double>(normalized_errors.size());
  for (int g = 1; g <= grid_size; ++g) {
    const double alpha = 6.0 * static_cast<double>(g) / static_cast<double>(grid_size);
    const double predicted = 2.0 * NormalCdf(alpha) - 1.0;
    double count = 0.0;
    for (double e : normalized_errors) {
      if (e <= alpha) count += 1.0;
    }
    const double empirical = n > 0.0 ? count / n : 0.0;
    result.alphas.push_back(alpha);
    result.predicted.push_back(predicted);
    result.empirical.push_back(empirical);
    result.dn += std::fabs(predicted - empirical);
  }
  if (grid_size > 0) result.dn /= static_cast<double>(grid_size);
  return result;
}

std::vector<double> Figure5AlphaGrid() {
  return {0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.2, 1.5,
          1.8, 2.0, 2.2, 2.5, 2.8, 3.0, 3.5, 4.0};
}

}  // namespace uqp
