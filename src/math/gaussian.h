#pragma once

#include <cmath>

namespace uqp {

/// Shared math constants (C++17: no std::numbers).
inline constexpr double kPi = 3.141592653589793238462643383279502884;
inline constexpr double kSqrt2 = 1.414213562373095048801688724209698079;

/// A (possibly degenerate) normal distribution N(mean, variance).
///
/// This is the core numeric object of the predictor: selectivities,
/// fitted cost functions, calibrated cost units and finally the predicted
/// running time t_q are all carried around as Gaussians (paper §5).
struct Gaussian {
  double mean = 0.0;
  double variance = 0.0;

  Gaussian() = default;
  Gaussian(double m, double v) : mean(m), variance(v) {}

  double stddev() const { return variance > 0.0 ? std::sqrt(variance) : 0.0; }

  /// Sum of independent Gaussians.
  Gaussian operator+(const Gaussian& o) const {
    return Gaussian(mean + o.mean, variance + o.variance);
  }
  /// Affine transform a*X + b.
  Gaussian Affine(double a, double b) const {
    return Gaussian(a * mean + b, a * a * variance);
  }
};

/// Standard normal pdf.
double NormalPdf(double x);

/// Standard normal cdf Phi(x) (via erf).
double NormalCdf(double x);

/// Cdf of N(mean, var) at x.
double NormalCdf(double x, double mean, double variance);

/// Inverse standard normal cdf (Acklam's rational approximation,
/// |error| < 1.15e-9 over (0,1)).
double NormalQuantile(double p);

/// Non-central moment E[X^k] of X ~ N(mu, sigma^2) for k in 1..4
/// (paper Table 3):
///   E[X]   = mu
///   E[X^2] = mu^2 + sigma^2
///   E[X^3] = mu^3 + 3 mu sigma^2
///   E[X^4] = mu^4 + 6 mu^2 sigma^2 + 3 sigma^4
double NormalMoment(double mu, double var, int k);

/// Var[X^2] for X ~ N(mu, sigma^2) = 2 sigma^2 (2 mu^2 + sigma^2).
double VarOfSquare(double mu, double var);

/// Cov(X^2, X) for X ~ N(mu, sigma^2) = 2 mu sigma^2.
double CovSquareLinear(double mu, double var);

/// Moments of the product of two INDEPENDENT normals X ~ N(mul, varl),
/// Y ~ N(mur, varr):
///   E[XY]        = mul * mur
///   Var[XY]      = mul^2 varr + mur^2 varl + varl varr
///   Cov(XY, X)   = mur * varl
///   Cov(XY, Y)   = mul * varr
double ProductMean(double mul, double mur);
double ProductVariance(double mul, double varl, double mur, double varr);
double CovProductLeft(double varl, double mur);
double CovProductRight(double mul, double varr);

/// Paper Lemma 4: Var[f] for f = b0 X^2 + b1 X + b2, X ~ N(mu, var):
///   Var[f] = var * [(b1 + 2 b0 mu)^2 + 2 b0^2 var].
double QuadraticFormVariance(double b0, double b1, double mu, double var);

/// Paper Lemma 8: Var[f] for f = b0 Xl Xr + b1 Xl + b2 Xr + b3 with
/// independent Xl ~ N(mul, varl), Xr ~ N(mur, varr):
///   Var[f] = varl (b0 mur + b1)^2 + varr (b0 mul + b2)^2 + b0^2 varl varr.
double BilinearFormVariance(double b0, double b1, double b2, double mul,
                            double varl, double mur, double varr);

/// Tail probability for an ordered sum of two independent normal running
/// times (the §6.5.3 scheduling question "run A then B: do both meet their
/// deadlines?"):
///
///   P(A <= da  AND  A + B <= db),   A ~ N(mu_a, var_a), B ~ N(mu_b, var_b)
///
/// computed exactly (under independence) as the one-dimensional integral
///
///   ∫_{-inf}^{da} pdf_A(t) · Phi_B(db - t) dt,
///
/// evaluated by composite Simpson quadrature over the +-8-sigma support of
/// A clipped at da (deterministic fixed-shape panels; absolute error well
/// below 1e-6, validated against a Monte-Carlo oracle in property_test).
///
/// This is NOT the product P(A <= da) · P(A + B <= db) that the toy
/// scheduler example historically used: the two events are positively
/// correlated through A, and conditioning on {A <= da} truncates A's
/// contribution to the sum, so the naive product systematically
/// underestimates the joint probability and can flip close ordering
/// decisions. Degenerate variances are handled (a point mass either meets
/// its deadline or doesn't).
double ProbBothMeetSequential(double mu_a, double var_a, double deadline_a,
                              double mu_b, double var_b, double deadline_b);

}  // namespace uqp
