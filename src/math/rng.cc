#include "math/rng.h"

#include <cmath>

#include "common/logging.h"
#include "math/gaussian.h"

namespace uqp {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  UQP_DCHECK(n >= 1);
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = (0ULL - n) % n;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  UQP_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

Rng Rng::SubStream(uint64_t index) const {
  // Avalanche (seed, index) into a fresh seed. index + 1 keeps
  // SubStream(0) distinct from the parent stream itself.
  uint64_t sm = seed_ ^ ((index + 1) * 0x9e3779b97f4a7c15ULL);
  return Rng(SplitMix64(&sm));
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(NextBelow(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace uqp
