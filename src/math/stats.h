#pragma once

#include <cstddef>
#include <vector>

namespace uqp {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (divides by n-1); 0 for n < 2.
double SampleVariance(const std::vector<double>& xs);

/// Population variance (divides by n); 0 for empty input.
double PopulationVariance(const std::vector<double>& xs);

/// Pearson linear correlation coefficient r_p (paper Eq. 7).
/// Returns 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Fractional (average) ranks in ascending order; ties get the mean of the
/// ranks they span, e.g. {4,7,5} -> {1,3,2} and {1,1,2} -> {1.5,1.5,3}.
std::vector<double> FractionalRanks(const std::vector<double>& xs);

/// Spearman rank correlation coefficient r_s: Pearson correlation of the
/// fractional ranks (paper §6.3).
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// Online accumulator for mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  /// Population variance.
  double population_variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Ordinary least-squares line y = slope*x + intercept (for the "Best-Fit"
/// lines in the paper's scatter plots).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

/// The paper's distributional proximity metric (§6.3).
///
/// For queries i with predicted N(mu_i, sigma_i^2) and actual time t_i, the
/// normalized error is e'_i = |t_i - mu_i| / sigma_i. The model-implied
/// probability is Pr(alpha) = 2 Phi(alpha) - 1 and the empirical one is
/// Pr_n(alpha) = (1/n) sum I(e'_i <= alpha). D_n(alpha) = |Pr_n - Pr| and
/// D_n is its average over an alpha grid on (0, 6).
struct ProximityResult {
  std::vector<double> alphas;
  std::vector<double> predicted;  ///< Pr(alpha)
  std::vector<double> empirical;  ///< Pr_n(alpha)
  double dn = 0.0;                ///< average |predicted - empirical|
};

/// Computes the proximity metric from normalized errors e'_i.
/// `grid_size` alphas are spaced uniformly over (0, 6].
ProximityResult ComputeProximity(const std::vector<double>& normalized_errors,
                                 int grid_size = 60);

/// The alpha grid used in the paper's Figure 5 x-axis.
std::vector<double> Figure5AlphaGrid();

}  // namespace uqp
