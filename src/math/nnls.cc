#include "math/nnls.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace uqp {

namespace {

/// Solves the unconstrained LS restricted to the passive columns via normal
/// equations with a tiny ridge for numerical safety (column counts here are
/// at most 4, so this is robust enough in practice).
bool SolveSubproblem(const NnlsProblem& p, const std::vector<int>& passive,
                     std::vector<double>* z) {
  const int k = static_cast<int>(passive.size());
  if (k == 0) return true;
  // Normal matrix G = Ap' Ap (k x k), rhs g = Ap' y.
  std::vector<double> g_mat(static_cast<size_t>(k) * k, 0.0);
  std::vector<double> g_rhs(k, 0.0);
  for (int i = 0; i < k; ++i) {
    const int ci = passive[i];
    for (int j = i; j < k; ++j) {
      const int cj = passive[j];
      double acc = 0.0;
      for (int r = 0; r < p.rows; ++r) {
        acc += p.a[static_cast<size_t>(r) * p.cols + ci] *
               p.a[static_cast<size_t>(r) * p.cols + cj];
      }
      g_mat[static_cast<size_t>(i) * k + j] = acc;
      g_mat[static_cast<size_t>(j) * k + i] = acc;
    }
    double acc = 0.0;
    for (int r = 0; r < p.rows; ++r) {
      acc += p.a[static_cast<size_t>(r) * p.cols + ci] * p.y[r];
    }
    g_rhs[i] = acc;
  }
  // Ridge scaled to the diagonal magnitude.
  double diag_max = 0.0;
  for (int i = 0; i < k; ++i) {
    diag_max = std::max(diag_max, g_mat[static_cast<size_t>(i) * k + i]);
  }
  const double ridge = std::max(diag_max, 1.0) * 1e-12;
  for (int i = 0; i < k; ++i) g_mat[static_cast<size_t>(i) * k + i] += ridge;

  // Gaussian elimination with partial pivoting.
  for (int col = 0; col < k; ++col) {
    int pivot = col;
    double best = std::fabs(g_mat[static_cast<size_t>(col) * k + col]);
    for (int r = col + 1; r < k; ++r) {
      const double v = std::fabs(g_mat[static_cast<size_t>(r) * k + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best <= 0.0) return false;
    if (pivot != col) {
      for (int c = 0; c < k; ++c) {
        std::swap(g_mat[static_cast<size_t>(pivot) * k + c],
                  g_mat[static_cast<size_t>(col) * k + c]);
      }
      std::swap(g_rhs[pivot], g_rhs[col]);
    }
    const double inv = 1.0 / g_mat[static_cast<size_t>(col) * k + col];
    for (int r = col + 1; r < k; ++r) {
      const double factor = g_mat[static_cast<size_t>(r) * k + col] * inv;
      if (factor == 0.0) continue;
      for (int c = col; c < k; ++c) {
        g_mat[static_cast<size_t>(r) * k + c] -=
            factor * g_mat[static_cast<size_t>(col) * k + c];
      }
      g_rhs[r] -= factor * g_rhs[col];
    }
  }
  std::vector<double> sol(k, 0.0);
  for (int r = k - 1; r >= 0; --r) {
    double acc = g_rhs[r];
    for (int c = r + 1; c < k; ++c) {
      acc -= g_mat[static_cast<size_t>(r) * k + c] * sol[c];
    }
    sol[r] = acc / g_mat[static_cast<size_t>(r) * k + r];
  }
  std::fill(z->begin(), z->end(), 0.0);
  for (int i = 0; i < k; ++i) (*z)[passive[i]] = sol[i];
  return true;
}

double ResidualNorm(const NnlsProblem& p, const std::vector<double>& x) {
  double acc = 0.0;
  for (int r = 0; r < p.rows; ++r) {
    double pred = 0.0;
    for (int c = 0; c < p.cols; ++c) {
      pred += p.a[static_cast<size_t>(r) * p.cols + c] * x[c];
    }
    const double d = pred - p.y[r];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

StatusOr<NnlsResult> SolveNnls(const NnlsProblem& problem) {
  if (problem.rows <= 0 || problem.cols <= 0) {
    return Status::InvalidArgument("NNLS: empty problem");
  }
  if (problem.a.size() != static_cast<size_t>(problem.rows) * problem.cols) {
    return Status::InvalidArgument("NNLS: matrix shape mismatch");
  }
  if (problem.y.size() != static_cast<size_t>(problem.rows)) {
    return Status::InvalidArgument("NNLS: rhs size mismatch");
  }
  if (!problem.nonnegative.empty() &&
      problem.nonnegative.size() != static_cast<size_t>(problem.cols)) {
    return Status::InvalidArgument("NNLS: constraint flag size mismatch");
  }

  const int n = problem.cols;
  // Normalize columns to unit L2 norm for conditioning (selectivity-power
  // columns span many orders of magnitude); positive scaling preserves the
  // nonnegativity constraints and the coefficients are unscaled at the end.
  NnlsProblem scaled = problem;
  std::vector<double> col_scale(static_cast<size_t>(n), 1.0);
  for (int j = 0; j < n; ++j) {
    double norm = 0.0;
    for (int r = 0; r < problem.rows; ++r) {
      const double v = problem.a[static_cast<size_t>(r) * n + j];
      norm += v * v;
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      col_scale[static_cast<size_t>(j)] = norm;
      for (int r = 0; r < scaled.rows; ++r) {
        scaled.a[static_cast<size_t>(r) * n + j] /= norm;
      }
    }
  }
  const NnlsProblem& p_ref = scaled;
  auto is_constrained = [&problem](int j) {
    return problem.nonnegative.empty() || problem.nonnegative[j];
  };

  std::vector<bool> in_passive(n, false);
  std::vector<int> passive;
  // Free columns start (and stay) in the passive set.
  for (int j = 0; j < n; ++j) {
    if (!is_constrained(j)) {
      in_passive[j] = true;
      passive.push_back(j);
    }
  }

  std::vector<double> x(n, 0.0);
  std::vector<double> z(n, 0.0);
  if (!passive.empty()) {
    if (!SolveSubproblem(p_ref, passive, &z)) {
      return Status::Internal("NNLS: singular subproblem on free columns");
    }
    x = z;
  }

  // Scale-aware tolerance for the dual feasibility test.
  double a_max = 0.0;
  for (double v : p_ref.a) a_max = std::max(a_max, std::fabs(v));
  double y_max = 0.0;
  for (double v : p_ref.y) y_max = std::max(y_max, std::fabs(v));
  const double tol = 1e-10 * std::max(1.0, a_max * y_max) * p_ref.rows;

  NnlsResult result;
  const int max_outer = 3 * n + 30;
  for (int outer = 0; outer < max_outer; ++outer) {
    ++result.iterations;
    // Gradient w = A'(y - Ax).
    std::vector<double> resid(p_ref.rows, 0.0);
    for (int r = 0; r < p_ref.rows; ++r) {
      double pred = 0.0;
      for (int c = 0; c < n; ++c) {
        pred += p_ref.a[static_cast<size_t>(r) * n + c] * x[c];
      }
      resid[r] = p_ref.y[r] - pred;
    }
    int best_j = -1;
    double best_w = tol;
    for (int j = 0; j < n; ++j) {
      if (in_passive[j]) continue;
      double w = 0.0;
      for (int r = 0; r < p_ref.rows; ++r) {
        w += p_ref.a[static_cast<size_t>(r) * n + j] * resid[r];
      }
      if (w > best_w) {
        best_w = w;
        best_j = j;
      }
    }
    if (best_j < 0) break;  // KKT satisfied.

    in_passive[best_j] = true;
    passive.push_back(best_j);

    // Inner loop: restore feasibility of constrained passive variables.
    for (int inner = 0; inner < 3 * n + 30; ++inner) {
      if (!SolveSubproblem(p_ref, passive, &z)) {
        return Status::Internal("NNLS: singular subproblem");
      }
      bool feasible = true;
      double alpha = std::numeric_limits<double>::infinity();
      for (int j : passive) {
        if (is_constrained(j) && z[j] <= 0.0) {
          feasible = false;
          const double denom = x[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
        }
      }
      if (feasible) {
        x = z;
        break;
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (int j = 0; j < n; ++j) {
        if (in_passive[j]) x[j] += alpha * (z[j] - x[j]);
      }
      // Move zeroed constrained variables back to the active set.
      std::vector<int> next_passive;
      for (int j : passive) {
        if (is_constrained(j) && x[j] <= 1e-14) {
          x[j] = 0.0;
          in_passive[j] = false;
        } else {
          next_passive.push_back(j);
        }
      }
      passive = std::move(next_passive);
    }
  }

  // Unscale coefficients back to the original column units.
  for (int j = 0; j < n; ++j) x[j] /= col_scale[static_cast<size_t>(j)];
  result.coefficients = x;
  result.residual_norm = ResidualNorm(problem, x);
  return result;
}

StatusOr<NnlsResult> SolveNnls(const std::vector<double>& a_row_major, int rows,
                               int cols, const std::vector<double>& y) {
  NnlsProblem problem;
  problem.a = a_row_major;
  problem.rows = rows;
  problem.cols = cols;
  problem.y = y;
  problem.nonnegative.assign(cols, true);
  return SolveNnls(problem);
}

}  // namespace uqp
