#include "math/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace uqp {

ZipfDistribution::ZipfDistribution(uint64_t n, double z) : n_(n), z_(z) {
  UQP_CHECK(n >= 1) << "Zipf domain must be nonempty";
  UQP_CHECK(z >= 0.0) << "Zipf exponent must be nonnegative";
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), z);
    cdf_[k] = acc;
  }
  const double inv_total = 1.0 / acc;
  for (auto& v : cdf_) v *= inv_total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t k) const {
  UQP_CHECK(k < n_);
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace uqp
