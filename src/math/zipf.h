#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.h"

namespace uqp {

/// Zipf(z) sampler over the domain {0, 1, ..., n-1} with
/// P(k) proportional to 1 / (k+1)^z.
///
/// z = 0 degenerates to the uniform distribution; z = 1 matches the skewed
/// TPC-H generator setting used in the paper (§6.1). The cumulative table
/// is precomputed so each draw is a binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double z);

  uint64_t n() const { return n_; }
  double z() const { return z_; }

  /// Draws one value in [0, n).
  uint64_t Sample(Rng* rng) const;

  /// Probability mass of value k.
  double Pmf(uint64_t k) const;

 private:
  uint64_t n_;
  double z_;
  std::vector<double> cdf_;
};

}  // namespace uqp
