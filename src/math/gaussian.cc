#include "math/gaussian.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace uqp {

double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 1.0 / std::sqrt(2.0 * kPi);
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double NormalCdf(double x, double mean, double variance) {
  if (variance <= 0.0) return x >= mean ? 1.0 : 0.0;
  return NormalCdf((x - mean) / std::sqrt(variance));
}

double NormalQuantile(double p) {
  UQP_CHECK(p > 0.0 && p < 1.0) << "quantile requires p in (0,1), got " << p;
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1.0 - plow;
  double q, r, x;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One step of Halley refinement for extra accuracy.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double NormalMoment(double mu, double var, int k) {
  switch (k) {
    case 0:
      return 1.0;
    case 1:
      return mu;
    case 2:
      return mu * mu + var;
    case 3:
      return mu * mu * mu + 3.0 * mu * var;
    case 4:
      return mu * mu * mu * mu + 6.0 * mu * mu * var + 3.0 * var * var;
    default:
      UQP_CHECK(false) << "NormalMoment supports k in [0,4], got " << k;
      return 0.0;
  }
}

double VarOfSquare(double mu, double var) {
  return 2.0 * var * (2.0 * mu * mu + var);
}

double CovSquareLinear(double mu, double var) { return 2.0 * mu * var; }

double ProductMean(double mul, double mur) { return mul * mur; }

double ProductVariance(double mul, double varl, double mur, double varr) {
  return mul * mul * varr + mur * mur * varl + varl * varr;
}

double CovProductLeft(double varl, double mur) { return mur * varl; }

double CovProductRight(double mul, double varr) { return mul * varr; }

double QuadraticFormVariance(double b0, double b1, double mu, double var) {
  const double t = b1 + 2.0 * b0 * mu;
  return var * (t * t + 2.0 * b0 * b0 * var);
}

double BilinearFormVariance(double b0, double b1, double b2, double mul,
                            double varl, double mur, double varr) {
  const double tl = b0 * mur + b1;
  const double tr = b0 * mul + b2;
  return varl * tl * tl + varr * tr * tr + b0 * b0 * varl * varr;
}

double ProbBothMeetSequential(double mu_a, double var_a, double deadline_a,
                              double mu_b, double var_b, double deadline_b) {
  // Degenerate A: a point mass at mu_a either fits its deadline or not, and
  // conditioning on {A <= da} does not change the sum.
  if (var_a <= 0.0) {
    if (mu_a > deadline_a) return 0.0;
    return NormalCdf(deadline_b, mu_a + mu_b, var_b);
  }
  const double sd_a = std::sqrt(var_a);
  // Integrate pdf_A(t) * Phi_B(db - t) over the effective support of A
  // clipped at da. Beyond +-8 sigma the pdf contributes < 1e-15.
  const double lo = mu_a - 8.0 * sd_a;
  const double hi = std::min(deadline_a, mu_a + 8.0 * sd_a);
  if (hi <= lo) {
    // Deadline cuts off the entire support from below: P(A <= da) ~ 0.
    return 0.0;
  }
  // Composite Simpson rule with a fixed even panel count: deterministic
  // (shape depends only on the inputs) and accurate to well under 1e-6 for
  // this smooth integrand.
  constexpr int kIntervals = 2048;  // even
  const double h = (hi - lo) / kIntervals;
  const double inv_sd_a = 1.0 / sd_a;
  auto integrand = [&](double t) {
    const double z = (t - mu_a) * inv_sd_a;
    // NormalCdf(x, mean, 0) degrades to a step, so a point-mass B is
    // handled by the same expression.
    return NormalPdf(z) * inv_sd_a * NormalCdf(deadline_b - t, mu_b, var_b);
  };
  double acc = integrand(lo) + integrand(hi);
  for (int i = 1; i < kIntervals; ++i) {
    const double w = (i & 1) ? 4.0 : 2.0;
    acc += w * integrand(lo + h * i);
  }
  const double p = acc * h / 3.0;
  // Clamp away quadrature noise at the boundaries of [0, 1].
  return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
}

}  // namespace uqp
