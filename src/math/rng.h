#pragma once

#include <cstdint>
#include <vector>

namespace uqp {

/// Deterministic, fast pseudo-random generator (xoshiro256++), seeded via
/// SplitMix64. All randomness in the library flows through this class so
/// experiments are exactly reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n) for n >= 1.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal draw (Box–Muller with caching).
  double NextGaussian();

  /// Normal draw with mean/stddev.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw with probability p.
  bool NextBool(double p);

  /// Exponential draw with given rate.
  double NextExponential(double rate);

  /// Forks an independent stream (useful to decorrelate sub-components
  /// while preserving determinism). The fork consumes one draw from this
  /// generator, so forked streams depend on the parent's draw history.
  Rng Fork();

  /// The i-th deterministic substream of this generator's *seed*. Unlike
  /// Fork(), the result depends only on the constructing seed and `index`
  /// — never on how many draws the parent has made — so shard i sees the
  /// same stream no matter how many shards exist, which thread runs it,
  /// or in what order substreams are taken. This is the primitive that
  /// keeps randomized work seed-stable at any thread count: give every
  /// parallel shard SubStream(shard_index) instead of slicing one
  /// sequential stream.
  Rng SubStream(uint64_t index) const;

  /// Fisher–Yates shuffle of indices [0, n); returns the permutation.
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t seed_ = 0;  ///< constructing seed, kept for SubStream
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace uqp
