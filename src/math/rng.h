#pragma once

#include <cstdint>
#include <vector>

namespace uqp {

/// Deterministic, fast pseudo-random generator (xoshiro256++), seeded via
/// SplitMix64. All randomness in the library flows through this class so
/// experiments are exactly reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n) for n >= 1.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal draw (Box–Muller with caching).
  double NextGaussian();

  /// Normal draw with mean/stddev.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw with probability p.
  bool NextBool(double p);

  /// Exponential draw with given rate.
  double NextExponential(double rate);

  /// Forks an independent stream (useful to decorrelate sub-components
  /// while preserving determinism).
  Rng Fork();

  /// Fisher–Yates shuffle of indices [0, n); returns the permutation.
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace uqp
