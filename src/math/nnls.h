#pragma once

#include <vector>

#include "common/status.h"

namespace uqp {

/// Dense column-major least-squares problem  min_b || A b - y ||_2  with
/// optional per-coefficient nonnegativity constraints.
///
/// This solves exactly the quadratic program the paper hands to Scilab's
/// `qpsolve` when fitting logical cost functions (§4.2): the work
/// coefficients are constrained to b_i >= 0 while constant offsets stay
/// free. The implementation is the Lawson–Hanson active-set method
/// generalized so that unconstrained columns are permanent members of the
/// passive set.
struct NnlsProblem {
  /// Row-major matrix A with `rows` x `cols` entries.
  std::vector<double> a;
  std::vector<double> y;
  int rows = 0;
  int cols = 0;
  /// nonnegative[j] == true -> b_j >= 0; false -> b_j is free.
  std::vector<bool> nonnegative;
};

struct NnlsResult {
  std::vector<double> coefficients;
  double residual_norm = 0.0;  ///< ||A b - y||_2 at the solution
  int iterations = 0;
};

/// Solves the constrained least-squares problem. Fails with
/// InvalidArgument on shape mismatches; Internal if the active-set loop
/// fails to converge (does not happen for well-posed cost-fitting inputs).
StatusOr<NnlsResult> SolveNnls(const NnlsProblem& problem);

/// Convenience wrapper for fully nonnegative problems.
StatusOr<NnlsResult> SolveNnls(const std::vector<double>& a_row_major, int rows,
                               int cols, const std::vector<double>& y);

}  // namespace uqp
