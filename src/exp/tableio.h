#pragma once

#include <string>
#include <vector>

namespace uqp {

/// Minimal fixed-width table printer for the bench drivers, so every
/// reproduced table/figure prints in a uniform, paper-like layout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision.
std::string Fmt(double v, int precision = 4);

/// Section banner, e.g. "== Figure 2: ... ==".
void PrintBanner(const std::string& title);

}  // namespace uqp
