#include "exp/harness.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sampling/estimator.h"

namespace uqp {

std::vector<QueryOutcome> EvaluationResult::outcomes() const {
  std::vector<QueryOutcome> out;
  out.reserve(records.size());
  for (const QueryRecord& r : records) out.push_back(r.outcome);
  return out;
}

ExperimentHarness::ExperimentHarness(HarnessOptions options)
    : options_(std::move(options)) {
  TpchConfig config = TpchConfig::Profile(options_.profile, options_.zipf,
                                          options_.seed);
  db_ = MakeTpchDatabase(config);
}

std::string ExperimentHarness::db_label() const {
  return (options_.zipf > 0.0 ? std::string("skewed-") : std::string("uniform-")) +
         options_.profile;
}

std::vector<ExperimentHarness::Setting> ExperimentHarness::PaperSettings() {
  return {{"uniform-1gb", "1gb", 0.0},
          {"skewed-1gb", "1gb", 1.0},
          {"uniform-10gb", "10gb", 0.0},
          {"skewed-10gb", "10gb", 1.0}};
}

Status ExperimentHarness::LoadWorkload(const std::string& kind, int size_hint) {
  if (workloads_.count(kind) > 0) return Status::OK();
  std::vector<WorkloadQuery> queries =
      MakeWorkload(db_, kind, options_.seed * 31 + 17, size_hint);
  std::vector<PreparedQuery> prepared;
  prepared.reserve(queries.size());
  Executor executor(&db_);
  for (WorkloadQuery& q : queries) {
    UQP_ASSIGN_OR_RETURN(Plan plan,
                         OptimizePlan(std::move(q.logical), db_, options_.planner));
    ExecOptions exec_options;
    exec_options.engine = options_.engine;
    UQP_ASSIGN_OR_RETURN(ExecResult full, executor.Execute(plan, exec_options));
    PreparedQuery pq;
    pq.name = std::move(q.name);
    pq.plan = std::move(plan);
    pq.full = std::move(full);
    prepared.push_back(std::move(pq));
  }
  workloads_.emplace(kind, std::move(prepared));
  return Status::OK();
}

double ExperimentHarness::BufferHitRateFor(const std::string& machine) const {
  const bool big_db = options_.profile == "10gb";
  if (machine == "PC1") return big_db ? 0.12 : 0.35;
  return big_db ? 0.30 : 0.60;  // PC2: 4x the memory
}

ExperimentHarness::MachineState& ExperimentHarness::MachineFor(
    const std::string& name) {
  auto it = machines_.find(name);
  if (it != machines_.end()) return it->second;
  UQP_CHECK(name == "PC1" || name == "PC2") << "unknown machine " << name;
  MachineProfile profile =
      name == "PC1" ? MachineProfile::PC1() : MachineProfile::PC2();
  profile.buffer_hit_rate = BufferHitRateFor(name);
  uint64_t seed = options_.seed * 1000003 + (name == "PC1" ? 1 : 2);
  MachineState state;
  state.machine = std::make_unique<SimulatedMachine>(profile, seed);
  Calibrator calibrator(state.machine.get());
  state.units = calibrator.Calibrate();
  auto [pos, _] = machines_.emplace(name, std::move(state));
  return pos->second;
}

const CostUnits& ExperimentHarness::UnitsFor(const std::string& machine) {
  return MachineFor(machine).units;
}

StatusOr<ExperimentHarness::SrState*> ExperimentHarness::SrFor(double ratio) {
  auto it = srs_.find(ratio);
  if (it != srs_.end()) return &it->second;
  SampleOptions sample_options;
  sample_options.sampling_ratio = ratio;
  sample_options.seed = options_.seed * 7919 + static_cast<uint64_t>(ratio * 1e6);
  SrState state;
  state.samples = std::make_unique<SampleDb>(SampleDb::Build(db_, sample_options));
  auto [pos, _] = srs_.emplace(ratio, std::move(state));
  return &pos->second;
}

Status ExperimentHarness::EnsureArtifacts(SrState* sr,
                                          const std::string& workload) {
  if (sr->artifacts.count(workload) > 0) return Status::OK();
  const auto& prepared = workloads_.at(workload);
  SamplingEstimator estimator(&db_, sr->samples.get());
  FitOptions fit = options_.fit;
  fit.engine = options_.engine;
  CostFunctionFitter fitter(&db_, fit);
  std::vector<QueryArtifacts> artifacts;
  artifacts.reserve(prepared.size());
  for (const PreparedQuery& pq : prepared) {
    QueryArtifacts qa;
    UQP_ASSIGN_OR_RETURN(qa.estimates, estimator.Estimate(pq.plan));
    UQP_ASSIGN_OR_RETURN(qa.cost_functions,
                         fitter.FitPlan(pq.plan, qa.estimates));
    artifacts.push_back(std::move(qa));
  }
  sr->artifacts.emplace(workload, std::move(artifacts));
  return Status::OK();
}

const std::vector<double>& ExperimentHarness::ActualTimesFor(
    MachineState* ms, const std::string& workload) {
  auto it = ms->actual_times.find(workload);
  if (it != ms->actual_times.end()) return it->second;
  const auto& prepared = workloads_.at(workload);
  std::vector<double> times;
  times.reserve(prepared.size());
  for (const PreparedQuery& pq : prepared) {
    times.push_back(ms->machine->ExecuteAveraged(pq.full, options_.runs_per_query));
  }
  auto [pos, _] = ms->actual_times.emplace(workload, std::move(times));
  return pos->second;
}

StatusOr<EvaluationResult> ExperimentHarness::Evaluate(
    const std::string& workload, const std::string& machine,
    double sampling_ratio, PredictorVariant variant, CovarianceBoundKind bound) {
  UQP_RETURN_IF_ERROR(LoadWorkload(workload));
  MachineState& ms = MachineFor(machine);
  UQP_ASSIGN_OR_RETURN(SrState * sr, SrFor(sampling_ratio));
  UQP_RETURN_IF_ERROR(EnsureArtifacts(sr, workload));

  const auto& prepared = workloads_.at(workload);
  const auto& artifacts = sr->artifacts.at(workload);
  const std::vector<double>& actual = ActualTimesFor(&ms, workload);

  EvaluationResult result;
  result.workload = workload;
  result.machine = machine;
  result.db_label = db_label();
  result.sampling_ratio = sampling_ratio;
  result.variant = variant;
  result.records.reserve(prepared.size());

  double overhead_acc = 0.0;
  for (size_t i = 0; i < prepared.size(); ++i) {
    const PreparedQuery& pq = prepared[i];
    const QueryArtifacts& qa = artifacts[i];
    const VarianceEngine engine(&qa.estimates, &qa.cost_functions, &ms.units,
                                variant, bound);
    QueryRecord record;
    record.name = pq.name;
    record.breakdown = engine.Compute();
    record.outcome.predicted_mean = record.breakdown.mean;
    record.outcome.predicted_stddev =
        std::sqrt(std::max(0.0, record.breakdown.variance));
    record.outcome.actual_time = actual[i];

    // Relative sampling overhead under this machine's cost units.
    double full_cost = 0.0, sample_cost = 0.0;
    for (const OpStats& st : pq.full.ops) {
      full_cost += st.actual.Dot(ms.units.Get(0).mean, ms.units.Get(1).mean,
                                 ms.units.Get(2).mean, ms.units.Get(3).mean,
                                 ms.units.Get(4).mean);
    }
    for (const OpStats& st : qa.estimates.sample_ops) {
      sample_cost += st.actual.Dot(ms.units.Get(0).mean, ms.units.Get(1).mean,
                                   ms.units.Get(2).mean, ms.units.Get(3).mean,
                                   ms.units.Get(4).mean);
    }
    record.overhead_ratio = full_cost > 0.0 ? sample_cost / full_cost : 0.0;
    overhead_acc += record.overhead_ratio;

    // Per selective-operator selectivity diagnostics (Tables 6-9).
    for (const PlanNode* node : pq.plan.NodesPreorder()) {
      const bool selective =
          (IsScan(node->type) && node->predicate != nullptr) || IsJoin(node->type);
      if (!selective) continue;
      const SelectivityEstimate& est =
          qa.estimates.ops[static_cast<size_t>(node->id)];
      if (est.from_optimizer) continue;
      record.op_sel_est.push_back(est.rho);
      record.op_sel_sigma.push_back(std::sqrt(std::max(0.0, est.variance)));
      record.op_sel_true.push_back(
          pq.full.ops[static_cast<size_t>(node->id)].selectivity());
    }
    result.records.push_back(std::move(record));
  }
  result.summary = ::uqp::Evaluate(result.outcomes());
  result.mean_overhead =
      prepared.empty() ? 0.0 : overhead_acc / static_cast<double>(prepared.size());
  return result;
}

}  // namespace uqp
