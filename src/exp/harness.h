#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/metrics.h"
#include "core/predictor.h"
#include "cost/calibration.h"
#include "datagen/tpch.h"
#include "engine/planner.h"
#include "hw/machine.h"
#include "workload/common.h"

namespace uqp {

/// One experiment database setting.
struct HarnessOptions {
  std::string profile = "1gb";  ///< "1gb" | "10gb" | "tiny"
  double zipf = 0.0;            ///< 0 = uniform, 1 = skewed (paper z = 1)
  uint64_t seed = 42;
  int runs_per_query = 5;  ///< paper protocol: average of 5 runs
  EngineConfig engine;
  FitOptions fit;
  PlannerConfig planner;
};

/// Per-query record of one evaluation.
struct QueryRecord {
  std::string name;
  QueryOutcome outcome;
  VarianceBreakdown breakdown;
  /// Predicted cost of the sample run relative to the full run (the
  /// relative sampling overhead of §6.4).
  double overhead_ratio = 0.0;
  /// Per selective operator (selections with predicates and joins, not
  /// optimizer-derived): estimated ρ, estimated σ(ρ), true ρ.
  std::vector<double> op_sel_est;
  std::vector<double> op_sel_sigma;
  std::vector<double> op_sel_true;
};

/// One (workload, machine, SR, variant) evaluation.
struct EvaluationResult {
  std::string workload;
  std::string machine;
  std::string db_label;
  double sampling_ratio = 0.0;
  PredictorVariant variant = PredictorVariant::kAll;
  std::vector<QueryRecord> records;
  EvaluationSummary summary;
  double mean_overhead = 0.0;

  std::vector<QueryOutcome> outcomes() const;
};

/// Experiment driver for one database setting. Heavy artifacts are cached
/// and shared across the grid:
///   - full executions per query (machine- and SR-independent),
///   - calibration per machine,
///   - sample tables + selectivity estimates + fitted cost functions per
///     SR (machine-independent),
/// so evaluating M machines x S ratios x V variants costs one full run and
/// S sample runs per query, plus cheap variance recomputations.
class ExperimentHarness {
 public:
  explicit ExperimentHarness(HarnessOptions options);

  const Database& db() const { return db_; }
  const HarnessOptions& options() const { return options_; }
  std::string db_label() const;

  /// Generates, optimizes and fully executes a workload ("micro",
  /// "seljoin", "tpch"). size_hint caps the query count (0 = default).
  Status LoadWorkload(const std::string& kind, int size_hint = 0);

  /// Calibrated units for a machine (calibrates on first use).
  const CostUnits& UnitsFor(const std::string& machine);

  StatusOr<EvaluationResult> Evaluate(
      const std::string& workload, const std::string& machine,
      double sampling_ratio, PredictorVariant variant = PredictorVariant::kAll,
      CovarianceBoundKind bound = CovarianceBoundKind::kBest);

  /// The four database settings of the paper's grid.
  struct Setting {
    std::string label;
    std::string profile;
    double zipf;
  };
  static std::vector<Setting> PaperSettings();

 private:
  struct PreparedQuery {
    std::string name;
    Plan plan;
    ExecResult full;
  };
  struct MachineState {
    std::unique_ptr<SimulatedMachine> machine;
    CostUnits units;
    /// workload kind -> averaged actual time per query.
    std::unordered_map<std::string, std::vector<double>> actual_times;
  };
  struct QueryArtifacts {
    PlanEstimates estimates;
    std::vector<OperatorCostFunctions> cost_functions;
  };
  struct SrState {
    std::unique_ptr<SampleDb> samples;
    /// workload kind -> per-query artifacts.
    std::unordered_map<std::string, std::vector<QueryArtifacts>> artifacts;
  };

  MachineState& MachineFor(const std::string& name);
  StatusOr<SrState*> SrFor(double ratio);
  Status EnsureArtifacts(SrState* sr, const std::string& workload);
  const std::vector<double>& ActualTimesFor(MachineState* ms,
                                            const std::string& workload);
  double BufferHitRateFor(const std::string& machine) const;

  HarnessOptions options_;
  Database db_;
  std::unordered_map<std::string, std::vector<PreparedQuery>> workloads_;
  std::unordered_map<std::string, MachineState> machines_;
  std::map<double, SrState> srs_;
};

}  // namespace uqp
