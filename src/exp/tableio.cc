#include "exp/tableio.h"

#include <cstdio>
#include <iostream>

namespace uqp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    std::cout << line << "\n";
  };
  print_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  std::cout << sep << "\n";
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void PrintBanner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

}  // namespace uqp
